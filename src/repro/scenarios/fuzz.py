"""Hypothesis strategies for randomized scenario timelines.

The scenario fuzzer draws a :class:`FuzzCase` — a small topology, a random
demand matrix, a random (always-valid) event timeline and a congestion
control fleet — and the harness in ``tests/scenarios/fuzz`` runs it on
every simulation core, asserting the global invariants of
:mod:`repro.scenarios.invariants`.

Design decisions that keep generated cases *meaningful*:

* **Coarse time grid.**  Every event and arrival time is a multiple of
  :data:`TIME_STEP_S`, so coincident timestamps (an arrival exactly at a
  cut, a repair exactly at a maintenance start) are common rather than
  measure-zero — the interesting orderings get exercised constantly.
* **Every cut is repaired.**  Link cuts always pair with recoveries,
  SRLG failures always carry a repair schedule, maintenance and power
  windows auto-close.  Timelines still overlap arbitrarily (an SRLG cut
  inside a maintenance window, a drain racing a surge), but a drained
  run is always reachable, which lets the harness assert bounded
  recovery and zero residual flows.
* **Small topologies, slow links.**  Three- and four-DC topologies with
  ~1 Gbps conduits keep runs in the tens of milliseconds of simulated
  time while guaranteeing that mid-run events actually hit in-flight
  flows.

This module is import-guarded: it requires the optional ``hypothesis``
test dependency and is deliberately *not* re-exported from
:mod:`repro.scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - exercised only without test deps
    raise ImportError(
        "repro.scenarios.fuzz requires the optional 'hypothesis' dependency "
        "(install the project's [test] extra)"
    ) from exc

from ..simulator.flow import FlowDemand
from ..topology.graph import GBPS, MS, Topology
from ..topology.paths import PathSet
from .events import (
    CapacityChange,
    DCMaintenance,
    LinkDown,
    LinkUp,
    MaintenanceCalendar,
    RegionalPowerEvent,
    Scenario,
    ScenarioEvent,
    SRLGFailure,
    TrafficDrain,
    TrafficSurge,
)

__all__ = [
    "TIME_STEP_S",
    "TIME_GRID",
    "FuzzTopologySpec",
    "FUZZ_TOPOLOGIES",
    "FuzzCase",
    "build_fuzz_topology",
    "build_fuzz_pathset",
    "grid_times",
    "scenarios",
    "demand_sets",
    "cc_fleets",
    "fuzz_cases",
]

#: resolution of the fuzzer's time grid (multiples of 5 ms)
TIME_STEP_S = 5e-3

#: every instant the fuzzer schedules events or arrivals at
TIME_GRID: Tuple[float, ...] = tuple(round(i * TIME_STEP_S, 6) for i in range(1, 21))


@dataclass(frozen=True)
class FuzzTopologySpec:
    """A small fuzzing topology plus the metadata strategies draw from.

    Attributes:
        name: registry key.
        build: zero-argument topology builder.
        pairs: (src, dst) DC pairs demands and surges are drawn from —
            chosen so every pair has at least two candidate paths (a cut
            leaves somewhere to re-route to).
        links: undirected inter-DC conduits, as (dc_a, dc_b) pairs.
        conduits: named SRLG groups (bundles that fail together).
        regions / tiers: label values present in the topology, for
            regional power event filters.
        maintainable: DCs that can enter maintenance without isolating a
            demand endpoint permanently.
    """

    name: str
    build: Callable[[], Topology]
    pairs: Tuple[Tuple[str, str], ...]
    links: Tuple[Tuple[str, str], ...]
    conduits: Dict[str, Tuple[Tuple[str, str], ...]]
    regions: Tuple[str, ...]
    tiers: Tuple[str, ...]
    maintainable: Tuple[str, ...]


def _build_triangle() -> Topology:
    """Three DCs, fully meshed: every pair has a direct and a relay path."""
    topo = Topology("fuzz-triangle")
    topo.add_dc("DCA", region="west", tier="tier4", power_redundancy="2N")
    topo.add_dc("DCB", region="west", tier="tier3", power_redundancy="N")
    topo.add_dc("DCC", region="east", tier="tier3", power_redundancy="N+1")
    for a, b, delay in (("DCA", "DCB", 1.0), ("DCB", "DCC", 1.0), ("DCA", "DCC", 2.0)):
        topo.add_inter_dc_link(a, b, cap_bps=1 * GBPS, delay_s=delay * MS)
    for dc in topo.dcs:
        topo.add_hosts(dc, count=4, nic_bps=1 * GBPS)
    topo.validate()
    return topo


def _build_diamond() -> Topology:
    """Four DCs in a braced diamond: DC1->DC4 has three candidate routes."""
    topo = Topology("fuzz-diamond")
    topo.add_dc("DC1", region="west", tier="tier4", power_redundancy="2N")
    topo.add_dc("DC2", region="west", tier="tier3", power_redundancy="N")
    topo.add_dc("DC3", region="east", tier="tier3", power_redundancy="N+1")
    topo.add_dc("DC4", region="east", tier="tier4", power_redundancy="2N")
    for a, b, delay in (
        ("DC1", "DC2", 1.0),
        ("DC1", "DC3", 2.0),
        ("DC2", "DC4", 1.0),
        ("DC3", "DC4", 2.0),
        ("DC2", "DC3", 1.0),
    ):
        topo.add_inter_dc_link(a, b, cap_bps=1 * GBPS, delay_s=delay * MS)
    for dc in topo.dcs:
        topo.add_hosts(dc, count=4, nic_bps=1 * GBPS)
    topo.validate()
    return topo


FUZZ_TOPOLOGIES: Dict[str, FuzzTopologySpec] = {
    "triangle": FuzzTopologySpec(
        name="triangle",
        build=_build_triangle,
        pairs=(("DCA", "DCC"), ("DCC", "DCA"), ("DCA", "DCB")),
        links=(("DCA", "DCB"), ("DCB", "DCC"), ("DCA", "DCC")),
        conduits={
            "west-conduit": (("DCA", "DCB"),),
            "relay-conduit": (("DCA", "DCB"), ("DCB", "DCC")),
        },
        regions=("west", "east"),
        tiers=("tier3", "tier4"),
        maintainable=("DCB",),
    ),
    "diamond": FuzzTopologySpec(
        name="diamond",
        build=_build_diamond,
        pairs=(("DC1", "DC4"), ("DC4", "DC1")),
        links=(
            ("DC1", "DC2"),
            ("DC1", "DC3"),
            ("DC2", "DC4"),
            ("DC3", "DC4"),
            ("DC2", "DC3"),
        ),
        conduits={
            "north-conduit": (("DC1", "DC2"), ("DC2", "DC4")),
            "south-conduit": (("DC1", "DC3"), ("DC3", "DC4")),
            "brace": (("DC2", "DC3"),),
        },
        regions=("west", "east"),
        tiers=("tier3", "tier4"),
        maintainable=("DC2", "DC3"),
    ),
}


def build_fuzz_topology(name: str) -> Topology:
    """Instantiate a registered fuzzing topology by name."""
    return FUZZ_TOPOLOGIES[name].build()


def build_fuzz_pathset(topology: Topology, lazy: bool = True) -> PathSet:
    """The candidate path set the fuzz harness routes over.

    ``lazy=False`` keeps the eager materialization reachable for the
    lazy/eager equivalence lane in the harness.
    """
    return PathSet(topology, max_candidates=4, max_extra_hops=1, lazy=lazy)


@dataclass(frozen=True)
class FuzzCase:
    """One generated fuzz input: everything needed to run a simulation.

    Attributes:
        topology_name: key into :data:`FUZZ_TOPOLOGIES`.
        scenario: the generated (valid, always-repaired) event timeline.
        demands: the base traffic matrix, arrivals on the time grid.
        cc: congestion control — an algorithm name or a mixed-fleet
            ``((name, share), ...)`` tuple.
        seed: simulation seed.
    """

    topology_name: str
    scenario: Scenario
    demands: Tuple[FlowDemand, ...]
    cc: object
    seed: int

    def __repr__(self) -> str:  # keep falsifying examples readable
        timeline = "; ".join(e.describe() for e in self.scenario.compiled_events())
        return (
            f"FuzzCase(topology={self.topology_name!r}, cc={self.cc!r}, "
            f"seed={self.seed}, demands={len(self.demands)}, "
            f"timeline=[{timeline}])"
        )


def grid_times(max_steps: int = 12) -> st.SearchStrategy:
    """Times on the fuzzer grid: ``TIME_STEP_S`` .. ``max_steps`` steps."""
    return st.sampled_from(TIME_GRID[:max_steps])


def _durations(max_steps: int = 6) -> st.SearchStrategy:
    return st.sampled_from(tuple(round(i * TIME_STEP_S, 6) for i in range(1, max_steps + 1)))


# ------------------------------------------------------------------ #
# event stories: each draws a short, internally-consistent event group
# ------------------------------------------------------------------ #
@st.composite
def _link_cut_stories(draw, spec: FuzzTopologySpec):
    """A link cut that is always repaired (possibly at the same instant)."""
    src, dst = draw(st.sampled_from(spec.links))
    at = draw(grid_times())
    gap = draw(st.sampled_from((0.0,) + tuple(round(i * TIME_STEP_S, 6) for i in range(1, 9))))
    bidirectional = draw(st.booleans())
    return (
        LinkDown(time_s=at, src=src, dst=dst, bidirectional=bidirectional),
        LinkUp(time_s=round(at + gap, 6), src=src, dst=dst, bidirectional=bidirectional),
    )


@st.composite
def _capacity_stories(draw, spec: FuzzTopologySpec):
    """A capacity dip, always restored to the full rate later."""
    src, dst = draw(st.sampled_from(spec.links))
    at = draw(grid_times(max_steps=16))
    gap = draw(_durations())
    factor = draw(st.sampled_from((0.25, 0.5, 0.75)))
    return (
        CapacityChange(time_s=at, src=src, dst=dst, factor=factor),
        CapacityChange(time_s=round(at + gap, 6), src=src, dst=dst, factor=1.0),
    )


@st.composite
def _srlg_stories(draw, spec: FuzzTopologySpec):
    """A named conduit cut with a (possibly staggered) repair schedule."""
    name = draw(st.sampled_from(sorted(spec.conduits)))
    at = draw(grid_times(max_steps=12))
    gap = draw(_durations())
    stagger = draw(st.sampled_from((0.0, TIME_STEP_S)))
    return (
        SRLGFailure(
            time_s=at,
            name=name,
            links=spec.conduits[name],
            recover_at_s=round(at + gap, 6),
            stagger_s=stagger,
        ),
    )


@st.composite
def _maintenance_stories(draw, spec: FuzzTopologySpec):
    """A single maintenance window on a relay DC."""
    dc = draw(st.sampled_from(spec.maintainable))
    at = draw(grid_times(max_steps=14))
    return (DCMaintenance(time_s=at, dc=dc, duration_s=draw(_durations())),)


@st.composite
def _calendar_stories(draw, spec: FuzzTopologySpec):
    """A recurring maintenance calendar (back-to-back windows allowed)."""
    dc = draw(st.sampled_from(spec.maintainable))
    at = draw(grid_times(max_steps=6))
    window = draw(_durations(max_steps=3))
    period = round(window + draw(st.sampled_from((0.0, TIME_STEP_S, 2 * TIME_STEP_S))), 6)
    occurrences = draw(st.integers(min_value=1, max_value=3))
    return (
        MaintenanceCalendar(
            time_s=at, dc=dc, window_s=window, period_s=period, occurrences=occurrences
        ),
    )


@st.composite
def _power_stories(draw, spec: FuzzTopologySpec):
    """A regional power event; 2N facilities always ride through."""
    if draw(st.booleans()):
        region, tier = draw(st.sampled_from(spec.regions)), None
    else:
        region, tier = None, draw(st.sampled_from(spec.tiers))
    return (
        RegionalPowerEvent(
            time_s=draw(grid_times(max_steps=12)),
            region=region,
            tier=tier,
            duration_s=draw(_durations()),
            survives_redundancy="2N",
            degraded_factor=draw(st.sampled_from((0.5, 1.0))),
        ),
    )


@st.composite
def _surge_stories(draw, spec: FuzzTopologySpec):
    """An extra flow batch injected mid-run."""
    return (
        TrafficSurge(
            time_s=draw(grid_times(max_steps=12)),
            pairs=(draw(st.sampled_from(spec.pairs)),),
            load=draw(st.sampled_from((0.5, 1.0))),
            num_flows=draw(st.integers(min_value=2, max_value=4)),
            seed=draw(st.integers(min_value=1, max_value=2**16)),
        ),
    )


@st.composite
def _drain_stories(draw, spec: FuzzTopologySpec):
    """Cancel a hash-selected fraction of the pending demands."""
    src, dst = draw(st.sampled_from(spec.pairs))
    scope = draw(st.sampled_from(("src", "dst", "both", "any")))
    return (
        TrafficDrain(
            time_s=draw(grid_times(max_steps=12)),
            src_dc=src if scope in ("src", "both") else None,
            dst_dc=dst if scope in ("dst", "both") else None,
            fraction=draw(st.sampled_from((0.25, 0.5, 1.0))),
        ),
    )


def _stories(spec: FuzzTopologySpec) -> st.SearchStrategy:
    return st.one_of(
        _link_cut_stories(spec),
        _capacity_stories(spec),
        _srlg_stories(spec),
        _maintenance_stories(spec),
        _calendar_stories(spec),
        _power_stories(spec),
        _surge_stories(spec),
        _drain_stories(spec),
    )


@st.composite
def scenarios(draw, topology_name: str, max_stories: int = 4) -> Scenario:
    """A valid scenario for a registered fuzz topology.

    Concatenates 1..``max_stories`` independent event stories; stories
    overlap freely in time (that is the point), but each story repairs
    what it breaks, so the timeline as a whole always heals.
    """
    spec = FUZZ_TOPOLOGIES[topology_name]
    stories = draw(st.lists(_stories(spec), min_size=1, max_size=max_stories))
    events: Tuple[ScenarioEvent, ...] = tuple(e for story in stories for e in story)
    return Scenario(
        name=f"fuzz-{topology_name}",
        events=events,
        stranded_timeout_s=draw(st.sampled_from((0.02, 0.05))),
    )


@st.composite
def demand_sets(
    draw,
    topology_name: str,
    min_flows: int = 8,
    max_flows: int = 25,
) -> Tuple[FlowDemand, ...]:
    """A base traffic matrix with on-grid arrivals (ties with events)."""
    spec = FUZZ_TOPOLOGIES[topology_name]
    count = draw(st.integers(min_value=min_flows, max_value=max_flows))
    demands = []
    for flow_id in range(count):
        src, dst = draw(st.sampled_from(spec.pairs))
        demands.append(
            FlowDemand(
                flow_id=flow_id,
                src_dc=src,
                dst_dc=dst,
                src_host=draw(st.integers(min_value=0, max_value=3)),
                dst_host=draw(st.integers(min_value=0, max_value=3)),
                size_bytes=draw(st.integers(min_value=200_000, max_value=1_500_000)),
                arrival_s=draw(st.sampled_from((0.0,) + TIME_GRID[:8])),
            )
        )
    demands.sort(key=lambda d: (d.arrival_s, d.flow_id))
    return tuple(demands)


def cc_fleets() -> st.SearchStrategy:
    """A congestion control choice: uniform fleet or a mixed one."""
    return st.sampled_from(
        (
            "dcqcn",
            "hpcc",
            "timely",
            (("dcqcn", 0.6), ("hpcc", 0.2), ("timely", 0.2)),
            (("dcqcn", 0.5), ("timely", 0.5)),
        )
    )


@st.composite
def fuzz_cases(draw, topology_name: Optional[str] = None) -> FuzzCase:
    """A complete fuzz input; see :class:`FuzzCase`."""
    name = topology_name or draw(st.sampled_from(sorted(FUZZ_TOPOLOGIES)))
    return FuzzCase(
        topology_name=name,
        scenario=draw(scenarios(name)),
        demands=draw(demand_sets(name)),
        cc=draw(cc_fleets()),
        seed=draw(st.integers(min_value=1, max_value=2**16)),
    )
