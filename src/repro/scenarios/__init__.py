"""Dynamic scenario engine: mid-run fault injection and traffic events.

A :class:`Scenario` is a declarative timeline of events — link failures and
recoveries, capacity degradations, traffic surges and drains, whole-DC
maintenance windows — and the :class:`ScenarioInjector` schedules it on a
running :class:`~repro.simulator.fluid.FluidSimulation`, re-evaluating
in-flight flows so the paper's data-plane fast-failover machinery (lazy
flow-cache invalidation, §3.4) is exercised by the simulator itself.

Canned scenarios live in :mod:`repro.scenarios.library` and can be named by
string from :class:`~repro.experiments.configs.ExperimentSpec`.
"""

from .events import (
    CapacityChange,
    DCMaintenance,
    LinkDown,
    LinkEvent,
    LinkUp,
    MaintenanceCalendar,
    RegionalPowerEvent,
    Scenario,
    ScenarioEvent,
    SRLGFailure,
    TrafficDrain,
    TrafficSurge,
)
from .injector import (
    SURGE_FLOW_ID_BASE,
    EventOutcome,
    ScenarioInjector,
    ScenarioMetrics,
)
from .library import (
    SCENARIO_BUILDERS,
    cascading_failure,
    conduit_cut,
    diurnal_surge,
    get_scenario,
    maintenance_calendar,
    regional_power_outage,
    rolling_maintenance,
    scenario_names,
    single_link_cut,
)

__all__ = [
    "Scenario",
    "ScenarioEvent",
    "LinkEvent",
    "LinkDown",
    "LinkUp",
    "CapacityChange",
    "TrafficSurge",
    "TrafficDrain",
    "DCMaintenance",
    "SRLGFailure",
    "RegionalPowerEvent",
    "MaintenanceCalendar",
    "ScenarioInjector",
    "ScenarioMetrics",
    "EventOutcome",
    "SURGE_FLOW_ID_BASE",
    "SCENARIO_BUILDERS",
    "scenario_names",
    "get_scenario",
    "single_link_cut",
    "cascading_failure",
    "diurnal_surge",
    "rolling_maintenance",
    "conduit_cut",
    "regional_power_outage",
    "maintenance_calendar",
]
