"""Reusable cross-core invariant checkers for scenario runs.

The scenario fuzzer (:mod:`repro.scenarios.fuzz` and
``tests/scenarios/fuzz/``) generates random valid event timelines and
asserts, on every simulation core, four global invariants that any
correct run must satisfy regardless of the timeline:

1. **Conservation of demand** (:func:`check_demand_conservation`) —
   every injected demand is accounted for exactly once: completed,
   explicitly failed, still unfinished at the stop time, or cancelled by
   a drain.
2. **No traffic over a dead link** (:class:`DeadLinkMonitor` live, and
   :func:`check_no_dead_link_traffic` post-hoc) — no flow ever achieves
   positive rate while any link of its path is down, the vectorized
   incidence liveness cache agrees with the link objects, and no
   completed flow's recorded route was dead for its whole lifetime
   (:func:`down_intervals` reconstructs per-link outage spans purely from
   the declarative timeline).
3. **Bounded recovery** (:func:`check_recovery_bound`) — every
   disruption is closed (re-routed, restored in place, or explicitly
   failed), and no recovery takes longer than the span between the first
   cut and the last repair of the timeline plus one update interval.
4. **Cross-core bit-identity** (:func:`assert_results_identical`,
   :func:`assert_scenario_metrics_identical`) — the scalar, legacy
   vectorized, SoA, cc_blocks and fused-backend cores (see
   :data:`CORE_CONFIGS`), with or without instrumentation, produce
   byte-for-byte identical records, link stats, failures and per-event
   outcomes; the torch backend (when installed) is held to the relaxed
   :func:`assert_results_close` tolerance contract instead.

Each checker raises :class:`InvariantViolation` (an ``AssertionError``
subclass, so pytest renders it natively) with enough context to replay
the failure.  To add an invariant, write a ``check_*`` function over a
:class:`~repro.simulator.fluid.SimulationResult` (post-hoc) or a step
observer attached via
:meth:`~repro.simulator.fluid.FluidSimulation.add_step_observer` (live),
and call it from the fuzz harness — see DESIGN.md, "Scenario invariants
& fuzzing".
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from ..simulator.link import RuntimeLink
from .events import (
    DCMaintenance,
    LinkDown,
    LinkUp,
    RegionalPowerEvent,
    Scenario,
    SRLGFailure,
)

__all__ = [
    "CORE_CONFIGS",
    "InvariantViolation",
    "check_demand_conservation",
    "down_intervals",
    "check_no_dead_link_traffic",
    "check_recovery_bound",
    "assert_results_identical",
    "assert_results_close",
    "assert_scenario_metrics_identical",
    "DeadLinkMonitor",
]

#: the simulation cores, as ``SimulationConfig`` field overrides — the
#: canonical axes the equivalence suite and the fuzzer sweep.  The
#: ``numpy_fused`` entry runs the default SoA/cc_blocks core on the fused
#: array backend (bit-identical by contract); when torch is importable a
#: ``torch`` entry is appended so the fuzzer also exercises the
#: device-resident backend (equivalent within the documented tolerance,
#: see DESIGN.md, "Array backends & kernels").
CORE_CONFIGS: Dict[str, Dict[str, object]] = {
    "scalar": {"vectorized": False},
    "vectorized": {"vectorized": True, "soa": False},
    "soa": {"vectorized": True, "soa": True, "cc_blocks": False},
    "cc_blocks": {"vectorized": True, "soa": True, "cc_blocks": True},
    "numpy_fused": {
        "vectorized": True,
        "soa": True,
        "cc_blocks": True,
        "backend": "numpy_fused",
    },
}

try:  # pragma: no cover - exercised only where torch is installed
    from ..backend import torch_available

    if torch_available():
        CORE_CONFIGS["torch"] = {
            "vectorized": True,
            "soa": True,
            "cc_blocks": True,
            "backend": "torch",
        }
except ImportError:  # pragma: no cover
    pass


class InvariantViolation(AssertionError):
    """A global scenario invariant does not hold for a run."""


def _violate(message: str) -> None:
    raise InvariantViolation(message)


# ---------------------------------------------------------------------- #
# invariant 1: conservation of demand
# ---------------------------------------------------------------------- #
def check_demand_conservation(result, num_demands: int) -> None:
    """Injected == completed + failed + residual (+ cancelled).

    Args:
        result: a :class:`~repro.simulator.fluid.SimulationResult`.
        num_demands: size of the base traffic matrix handed to the run
            (surge injections and drain cancellations are read off the
            run's scenario metrics).

    Raises:
        InvariantViolation: when any demand is lost or double-counted.
    """
    metrics = result.scenario_metrics
    injected = metrics.total_injected if metrics is not None else 0
    cancelled = metrics.total_cancelled if metrics is not None else 0
    completed = len(result.records)
    failed = len(result.failed_flows)
    residual = result.unfinished_flows
    lhs = num_demands + injected
    rhs = completed + failed + residual + cancelled
    if lhs != rhs:
        _violate(
            f"demand conservation: {num_demands} base + {injected} injected "
            f"= {lhs}, but {completed} completed + {failed} failed + "
            f"{residual} unfinished + {cancelled} cancelled = {rhs}"
        )
    completed_ids = [r.flow_id for r in result.records]
    if len(set(completed_ids)) != len(completed_ids):
        _violate("demand conservation: duplicate flow_id in completed records")
    overlap = set(completed_ids) & {f.flow_id for f in result.failed_flows}
    if overlap:
        _violate(
            f"demand conservation: flows both completed and failed: {sorted(overlap)}"
        )


# ---------------------------------------------------------------------- #
# invariant 2: no traffic over a dead link
# ---------------------------------------------------------------------- #
def down_intervals(
    scenario: Scenario, topology
) -> Dict[Tuple[str, str], List[Tuple[float, float]]]:
    """Per directed link: merged ``[start, end)`` outage intervals.

    Reconstructed *purely* from the declarative compiled timeline — an
    independent re-implementation of the runtime's reference-counted
    down-causes, used to cross-check it.  Overlapping causes (an SRLG cut
    inside a maintenance window) merge into one interval; an outage never
    repaired extends to ``+inf``.  Events that only degrade capacity
    (:class:`~repro.scenarios.events.CapacityChange`, the surviving-DC
    side of a :class:`~repro.scenarios.events.RegionalPowerEvent`) do not
    produce intervals — a degraded link is slow, not dead.
    """
    adjacency: Dict[str, List[Tuple[str, str]]] = {}
    for spec in topology.inter_dc_links():
        adjacency.setdefault(spec.src, []).append(spec.key)
        adjacency.setdefault(spec.dst, []).append(spec.key)

    # directed key -> list of (time, +1/-1) down-cause deltas
    deltas: Dict[Tuple[str, str], List[Tuple[float, int]]] = {}

    def add(key: Tuple[str, str], time_s: float, delta: int) -> None:
        deltas.setdefault(key, []).append((time_s, delta))

    for event in scenario.compiled_events():
        if isinstance(event, LinkDown):
            for key in event.affected_link_keys(None):
                add(key, event.time_s, +1)
        elif isinstance(event, LinkUp):
            add((event.src, event.dst), event.time_s, -1)
            if event.bidirectional:
                add((event.dst, event.src), event.time_s, -1)
        elif isinstance(event, SRLGFailure):
            repairs = event.recovery_times()
            for i, (src, dst) in enumerate(event.links):
                keys = [(src, dst)]
                if event.bidirectional:
                    keys.append((dst, src))
                for key in keys:
                    add(key, event.time_s, +1)
                    if repairs:
                        add(key, repairs[i], -1)
        elif isinstance(event, DCMaintenance):
            for key in adjacency.get(event.dc, ()):
                add(key, event.time_s, +1)
                add(key, event.end_s, -1)
        elif isinstance(event, RegionalPowerEvent):
            blackout, _ = event.classify_dcs(topology)
            dark = set()
            for dc in blackout:
                dark.update(adjacency.get(dc, ()))
            for key in dark:
                add(key, event.time_s, +1)
                add(key, event.end_s, -1)

    intervals: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for key, changes in deltas.items():
        # net the deltas per instant first so a down+up at the same float
        # time (which the runtime applies in timeline order within one
        # engine instant) yields no positive-measure interval
        by_time: Dict[float, int] = {}
        for time_s, delta in changes:
            by_time[time_s] = by_time.get(time_s, 0) + delta
        count = 0
        start: Optional[float] = None
        merged: List[Tuple[float, float]] = []
        for time_s in sorted(by_time):
            previous = count
            count += by_time[time_s]
            if previous == 0 and count > 0:
                start = time_s
            elif previous > 0 and count <= 0 and start is not None:
                if time_s > start:
                    merged.append((start, time_s))
                start = None
        if count > 0 and start is not None:
            merged.append((start, math.inf))
        if merged:
            intervals[key] = merged
    return intervals


def check_no_dead_link_traffic(
    result, scenario: Scenario, topology, monitor: "Optional[DeadLinkMonitor]" = None
) -> None:
    """No completed flow's route was dead for its entire lifetime.

    Combines the live per-step evidence of a :class:`DeadLinkMonitor`
    (when one was attached) with a post-hoc check over the MetricsStore
    path columns: a completed flow's *final* route must not cross a link
    whose (timeline-reconstructed) outage interval covers the whole
    ``[arrival, finish]`` span — a flow cannot make progress, let alone
    complete, on a path that was dead wall-to-wall (re-routes only land
    on fully-healthy paths, so the final route was live at selection
    time).

    Raises:
        InvariantViolation: on any recorded live violation, a stale
            incidence liveness cache, an unknown recorded route hop, or a
            completed flow inside a covering outage interval.
    """
    if monitor is not None and monitor.violations:
        worst = monitor.violations[:5]
        _violate(
            f"dead-link traffic: {len(monitor.violations)} live step "
            f"violations, first {worst}"
        )

    outages = down_intervals(scenario, topology)
    if not outages:
        return
    known = {spec.key for spec in topology.inter_dc_links()}
    store = result.store
    if store is None:
        return
    n = len(store)
    flow_ids = store.column("flow_id")
    arrivals = store.column("arrival_s")
    fcts = store.column("fct_s")
    paths = store.path_indices()
    for row in range(n):
        route = store.route(int(paths[row]))
        arrival = float(arrivals[row])
        finish = arrival + float(fcts[row])
        for src, dst in zip(route, route[1:]):
            if (src, dst) not in known:
                _violate(
                    f"dead-link traffic: flow {int(flow_ids[row])} recorded "
                    f"unknown hop {src}->{dst} in route {route}"
                )
            for start, end in outages.get((src, dst), ()):
                if start <= arrival and end >= finish:
                    _violate(
                        f"dead-link traffic: flow {int(flow_ids[row])} "
                        f"completed over {src}->{dst} although the link was "
                        f"down [{start:g}, {end:g}] covering its lifetime "
                        f"[{arrival:g}, {finish:g}]"
                    )


class DeadLinkMonitor:
    """Live step observer: no positive rate over a dead link, ever.

    Attach to a simulation with :meth:`attach` (before ``run()``); after
    every update step it verifies, for each active flow, that a positive
    achieved rate implies every link of its path is up, and — on the
    vectorized cores — that the flow×link incidence liveness cache agrees
    with the :class:`~repro.simulator.link.RuntimeLink` objects whenever
    the cache is current.  Violations are collected (not raised) so a run
    completes and :func:`check_no_dead_link_traffic` can report them with
    the post-hoc evidence.
    """

    def __init__(self) -> None:
        self.violations: List[Tuple] = []
        self.steps_observed = 0

    def attach(self, sim) -> "DeadLinkMonitor":
        """Register on a :class:`~repro.simulator.fluid.FluidSimulation`."""
        sim.add_step_observer(self)
        return self

    def __call__(self, sim, now: float) -> None:
        self.steps_observed += 1
        for flow in sim._active:
            if flow.achieved_bps > 0.0:
                for link in flow.path:
                    if not link.up:
                        self.violations.append(
                            ("rate-over-dead-link", now, flow.flow_id, link.key,
                             flow.achieved_bps)
                        )
        incidence = sim._incidence
        if (
            incidence is not None
            and incidence._seen_state_version == RuntimeLink.state_version
        ):
            for slot, link in enumerate(incidence.links):
                if bool(incidence.up[slot]) != bool(link.up):
                    self.violations.append(
                        ("incidence-liveness-stale", now, link.key, slot)
                    )


# ---------------------------------------------------------------------- #
# invariant 3: bounded recovery
# ---------------------------------------------------------------------- #
def _timeline_repair_span(scenario: Scenario) -> Tuple[float, float]:
    """(first cut time, last repair time) of the compiled timeline."""
    first_down = math.inf
    last_up = -math.inf
    for event in scenario.compiled_events():
        if isinstance(event, (LinkDown, SRLGFailure)):
            first_down = min(first_down, event.time_s)
            last_up = max(last_up, event.time_s, *event_recoveries(event))
        elif isinstance(event, (DCMaintenance, RegionalPowerEvent)):
            first_down = min(first_down, event.time_s)
            last_up = max(last_up, event.end_s)
        elif isinstance(event, LinkUp):
            last_up = max(last_up, event.time_s)
    return first_down, last_up


def event_recoveries(event) -> Tuple[float, ...]:
    """Per-link repair instants of an event (empty when none)."""
    recoveries = getattr(event, "recovery_times", None)
    return recoveries() if callable(recoveries) else ()


def check_recovery_bound(
    result,
    scenario: Scenario,
    update_interval_s: float,
    slack_s: float = 1e-9,
    require_drained: bool = True,
) -> None:
    """Every disruption closes, within the timeline's repair span.

    * Per event outcome: ``disrupted == rerouted + restored + failed`` —
      no disruption is left open at the end of a fully drained run.
    * Every recorded re-route and in-place-restore latency is bounded by
      the span between the timeline's first cut and last repair plus one
      update interval (detection granularity): after the last repair the
      network must return to steady state, nothing may stay disrupted
      longer.
    * With ``require_drained`` (the default for fuzz runs, which give
      generous drain headroom) the run must finish with zero unfinished
      flows.

    Raises:
        InvariantViolation: on open disruptions, an out-of-bound recovery
            latency, or residual flows when ``require_drained``.
    """
    metrics = result.scenario_metrics
    if metrics is None:
        return
    for outcome in metrics.outcomes:
        closed = outcome.flows_rerouted + outcome.flows_restored + outcome.flows_failed
        if outcome.flows_disrupted != closed:
            _violate(
                f"recovery: event #{outcome.index} ({outcome.kind}) left "
                f"disruptions open: {outcome.flows_disrupted} disrupted vs "
                f"{outcome.flows_rerouted} rerouted + {outcome.flows_restored} "
                f"restored + {outcome.flows_failed} failed"
            )
    first_down, last_up = _timeline_repair_span(scenario)
    span = max(0.0, last_up - first_down) if last_up > -math.inf else 0.0
    bound = span + update_interval_s + slack_s
    for label, latencies in (
        ("reroute", metrics.reroute_latencies_s()),
        ("restore", metrics.restore_latencies_s()),
    ):
        for latency in latencies:
            if latency > bound:
                _violate(
                    f"recovery: a {label} took {latency:g}s, exceeding the "
                    f"first-cut-to-last-repair bound {bound:g}s"
                )
    if require_drained and result.unfinished_flows:
        _violate(
            f"recovery: {result.unfinished_flows} flows still unfinished at "
            f"the stop time (the run did not return to steady state)"
        )


# ---------------------------------------------------------------------- #
# invariant 4: cross-core bit-identity
# ---------------------------------------------------------------------- #
def assert_results_identical(reference, other, label: str = "") -> None:
    """Two runs produced byte-identical observable results.

    Compares completed-flow records, link stats, run counters and failed
    flows via exact (bitwise, no tolerance) equality — the contract the
    scalar / legacy-vectorized / SoA / cc_blocks cores and the
    instrumented/uninstrumented modes all share.

    Raises:
        InvariantViolation: on the first differing field.
    """
    prefix = f"bit-identity[{label}]: " if label else "bit-identity: "
    ref_records, other_records = reference.records, other.records
    if len(ref_records) != len(other_records):
        _violate(
            f"{prefix}{len(ref_records)} vs {len(other_records)} completed records"
        )
    for a, b in zip(ref_records, other_records):
        if dataclasses.asdict(a) != dataclasses.asdict(b):
            _violate(f"{prefix}record mismatch:\n  {a}\n  {b}")
    for field in (
        "duration_s",
        "unfinished_flows",
        "routing_decisions",
        "monitor_samples",
    ):
        va, vb = getattr(reference, field), getattr(other, field)
        if va != vb:
            _violate(f"{prefix}{field}: {va} vs {vb}")
    if len(reference.link_stats) != len(other.link_stats):
        _violate(f"{prefix}link_stats length differs")
    for a, b in zip(reference.link_stats, other.link_stats):
        if dataclasses.asdict(a) != dataclasses.asdict(b):
            _violate(f"{prefix}link stats mismatch:\n  {a}\n  {b}")
    if len(reference.failed_flows) != len(other.failed_flows):
        _violate(
            f"{prefix}{len(reference.failed_flows)} vs "
            f"{len(other.failed_flows)} failed flows"
        )
    for a, b in zip(reference.failed_flows, other.failed_flows):
        if dataclasses.asdict(a) != dataclasses.asdict(b):
            _violate(f"{prefix}failed flow mismatch:\n  {a}\n  {b}")
    assert_scenario_metrics_identical(reference, other, label=label)


def assert_results_close(
    reference, other, rtol: float = 1e-9, label: str = ""
) -> None:
    """Two runs produced equivalent results within a relative tolerance.

    The comparison contract for the ``torch`` array backend: device
    scatter-adds accumulate duplicates in unspecified order (hardware
    atomics), so float fields are compared with ``math.isclose(rel_tol=
    rtol, abs_tol=rtol)`` instead of bitwise — everything discrete
    (flow ids, counts, orderings, event outcomes) must still match
    exactly.  See DESIGN.md, "Array backends & kernels".

    Raises:
        InvariantViolation: on the first field outside tolerance.
    """
    prefix = f"tolerance[{label}]: " if label else "tolerance: "

    def close(x, y) -> bool:
        if isinstance(x, float) and isinstance(y, float):
            return math.isclose(x, y, rel_tol=rtol, abs_tol=rtol)
        return x == y

    ref_records, other_records = reference.records, other.records
    if len(ref_records) != len(other_records):
        _violate(
            f"{prefix}{len(ref_records)} vs {len(other_records)} completed records"
        )
    for a, b in zip(ref_records, other_records):
        da, db = dataclasses.asdict(a), dataclasses.asdict(b)
        if set(da) != set(db) or not all(close(da[k], db[k]) for k in da):
            _violate(f"{prefix}record outside tolerance:\n  {a}\n  {b}")
    for field in ("unfinished_flows", "routing_decisions", "monitor_samples"):
        va, vb = getattr(reference, field), getattr(other, field)
        if va != vb:
            _violate(f"{prefix}{field}: {va} vs {vb}")
    if not close(reference.duration_s, other.duration_s):
        _violate(
            f"{prefix}duration_s: {reference.duration_s} vs {other.duration_s}"
        )
    if len(reference.link_stats) != len(other.link_stats):
        _violate(f"{prefix}link_stats length differs")
    for a, b in zip(reference.link_stats, other.link_stats):
        da, db = dataclasses.asdict(a), dataclasses.asdict(b)
        if set(da) != set(db) or not all(close(da[k], db[k]) for k in da):
            _violate(f"{prefix}link stats outside tolerance:\n  {a}\n  {b}")
    if len(reference.failed_flows) != len(other.failed_flows):
        _violate(
            f"{prefix}{len(reference.failed_flows)} vs "
            f"{len(other.failed_flows)} failed flows"
        )
    for a, b in zip(reference.failed_flows, other.failed_flows):
        da, db = dataclasses.asdict(a), dataclasses.asdict(b)
        if set(da) != set(db) or not all(close(da[k], db[k]) for k in da):
            _violate(f"{prefix}failed flow outside tolerance:\n  {a}\n  {b}")
    assert_scenario_metrics_identical(reference, other, label=label)


def assert_scenario_metrics_identical(reference, other, label: str = "") -> None:
    """Two runs produced identical per-event scenario outcomes."""
    prefix = f"bit-identity[{label}]: " if label else "bit-identity: "
    a, b = reference.scenario_metrics, other.scenario_metrics
    if (a is None) != (b is None):
        _violate(f"{prefix}scenario metrics present on only one side")
    if a is None:
        return
    if a.scenario_name != b.scenario_name:
        _violate(f"{prefix}scenario name {a.scenario_name!r} vs {b.scenario_name!r}")
    if len(a.outcomes) != len(b.outcomes):
        _violate(f"{prefix}{len(a.outcomes)} vs {len(b.outcomes)} event outcomes")
    for oa, ob in zip(a.outcomes, b.outcomes):
        if dataclasses.asdict(oa) != dataclasses.asdict(ob):
            _violate(f"{prefix}event outcome mismatch:\n  {oa}\n  {ob}")
