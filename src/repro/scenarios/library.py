"""Canned, parameterisable scenarios for examples, benchmarks and specs.

Each builder returns a fully formed :class:`~repro.scenarios.events.Scenario`
sized for the testbed8 topology by default but parameterisable for any
topology.  The registry lets experiment specs name a scenario by string
(``ExperimentSpec(scenario="single-link-cut")``) the same way they name
routers and congestion controls.

Builders:

* :func:`single_link_cut` — one fiber cut and its repair, the paper's §3.4
  fast-failover experiment.
* :func:`cascading_failure` — several links die in sequence (a correlated
  outage walking across the backbone), then everything is repaired at once.
* :func:`diurnal_surge` — repeated traffic peaks on top of the base load
  (the inter-DC diurnal pattern).
* :func:`rolling_maintenance` — DCs are drained one after another, each for
  a fixed window (a software-rollout wave).
* :func:`conduit_cut` — a shared-risk link group (one physical conduit
  carrying several logical links) is cut atomically and repaired link by
  link (:class:`~repro.scenarios.events.SRLGFailure`).
* :func:`regional_power_outage` — every DC in one region loses utility
  power; facilities with sufficient power redundancy ride through at
  degraded capacity (:class:`~repro.scenarios.events.RegionalPowerEvent`).
* :func:`maintenance_calendar` — a recurring per-DC maintenance schedule
  compiled to a flat window timeline
  (:class:`~repro.scenarios.events.MaintenanceCalendar`).

Name a canned scenario from an experiment spec (the common way)::

    from repro.experiments import ExperimentRunner, ExperimentSpec

    run = ExperimentRunner().run(
        ExperimentSpec(name="cut", scenario="single-link-cut", num_flows=500)
    )
    print(run.result.scenario_metrics.total_rerouted)

Or build one with custom parameters — every builder is a plain function
(these are also re-exported as ``repro.get_scenario`` /
``repro.scenario_names``)::

    from repro.scenarios.library import cascading_failure, get_scenario

    scenario = cascading_failure(
        links=[("DC1", "DC7"), ("DC1", "DC5")],
        first_at_s=0.25,
        interval_s=0.5,
        stranded_timeout_s=1.0,
    )
    same = get_scenario("single-link-cut", fail_at_s=0.25, recover_at_s=0.75)
    run = ExperimentRunner().run(
        ExperimentSpec(name="cascade", scenario=scenario, num_flows=500)
    )
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .events import (
    DCMaintenance,
    LinkDown,
    LinkUp,
    MaintenanceCalendar,
    RegionalPowerEvent,
    Scenario,
    ScenarioEvent,
    SRLGFailure,
    TrafficSurge,
)

__all__ = [
    "single_link_cut",
    "cascading_failure",
    "diurnal_surge",
    "rolling_maintenance",
    "conduit_cut",
    "regional_power_outage",
    "maintenance_calendar",
    "SCENARIO_BUILDERS",
    "scenario_names",
    "get_scenario",
]


def single_link_cut(
    fail_at_s: float = 0.5,
    recover_at_s: float = 1.5,
    src: str = "DC1",
    dst: str = "DC7",
    stranded_timeout_s: Optional[float] = None,
) -> Scenario:
    """One bidirectional fiber cut and its repair.

    The default cuts DC1->DC7, the most attractive low-delay route of the
    8-DC testbed, so in-flight flows must fail over onto slower candidates
    and FCT slowdown visibly degrades until the repair.
    """
    if recover_at_s <= fail_at_s:
        raise ValueError("recover_at_s must come after fail_at_s")
    return Scenario(
        name="single-link-cut",
        events=(
            LinkDown(fail_at_s, src, dst),
            LinkUp(recover_at_s, src, dst),
        ),
        stranded_timeout_s=stranded_timeout_s,
        description=f"cut {src}<->{dst} at {fail_at_s:g}s, repair at {recover_at_s:g}s",
    )


def cascading_failure(
    links: Sequence[Tuple[str, str]] = (("DC1", "DC7"), ("DC1", "DC5"), ("DC1", "DC3")),
    first_at_s: float = 0.5,
    interval_s: float = 0.25,
    repair_at_s: Optional[float] = None,
    stranded_timeout_s: Optional[float] = 0.5,
) -> Scenario:
    """Links fail one after another; everything is repaired at once.

    Each successive cut removes another candidate, concentrating load (and
    eventually stranding flows when every candidate is gone — which is why
    the default sets a stranded timeout so blackholed flows are recorded as
    failed instead of hanging the drain phase).
    """
    if not links:
        raise ValueError("cascading_failure needs at least one link")
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    last_cut_s = first_at_s + interval_s * (len(links) - 1)
    if repair_at_s is None:
        repair_at_s = last_cut_s + 4 * interval_s
    if repair_at_s <= last_cut_s:
        raise ValueError("repair_at_s must come after the last cut")
    events: List[ScenarioEvent] = [
        LinkDown(first_at_s + i * interval_s, src, dst)
        for i, (src, dst) in enumerate(links)
    ]
    events.extend(LinkUp(repair_at_s, src, dst) for src, dst in links)
    return Scenario(
        name="cascading-failure",
        events=tuple(events),
        stranded_timeout_s=stranded_timeout_s,
        description=(
            f"{len(links)} links fail every {interval_s:g}s from {first_at_s:g}s, "
            f"all repaired at {repair_at_s:g}s"
        ),
    )


def diurnal_surge(
    pairs: Sequence[Tuple[str, str]] = (("DC1", "DC8"),),
    first_peak_s: float = 0.5,
    period_s: float = 2.0,
    peaks: int = 2,
    peak_load: float = 0.4,
    flows_per_peak: int = 200,
    workload: str = "websearch",
    seed: int = 4242,
) -> Scenario:
    """Repeated traffic peaks on top of the base matrix.

    Each peak injects an extra Poisson batch at ``peak_load`` between the
    given DC pairs; the period models the (time-compressed) diurnal cycle of
    inter-DC traffic.
    """
    if peaks <= 0:
        raise ValueError("peaks must be positive")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    events = tuple(
        TrafficSurge(
            first_peak_s + i * period_s,
            pairs=tuple(pairs),
            load=peak_load,
            num_flows=flows_per_peak,
            workload=workload,
            seed=seed,
        )
        for i in range(peaks)
    )
    return Scenario(
        name="diurnal-surge",
        events=events,
        description=(
            f"{peaks} peaks of {flows_per_peak} flows at load {peak_load:g}, "
            f"every {period_s:g}s from {first_peak_s:g}s"
        ),
    )


def rolling_maintenance(
    dcs: Sequence[str] = ("DC2", "DC4", "DC6"),
    first_at_s: float = 0.5,
    window_s: float = 0.4,
    gap_s: float = 0.2,
    stranded_timeout_s: Optional[float] = 0.5,
) -> Scenario:
    """Drain DCs one after another, each for a fixed maintenance window.

    Windows do not overlap (the next DC starts ``gap_s`` after the previous
    window closes), mirroring a rollout wave that never takes two relays
    down at once.
    """
    if not dcs:
        raise ValueError("rolling_maintenance needs at least one DC")
    if window_s <= 0 or gap_s < 0:
        raise ValueError("window_s must be positive and gap_s non-negative")
    events = tuple(
        DCMaintenance(first_at_s + i * (window_s + gap_s), dc=dc, duration_s=window_s)
        for i, dc in enumerate(dcs)
    )
    return Scenario(
        name="rolling-maintenance",
        events=events,
        stranded_timeout_s=stranded_timeout_s,
        description=(
            f"drain {', '.join(dcs)} for {window_s:g}s each, "
            f"{gap_s:g}s apart, from {first_at_s:g}s"
        ),
    )


def conduit_cut(
    name: str = "west-conduit",
    links: Sequence[Tuple[str, str]] = (("DC1", "DC7"), ("DC1", "DC5"), ("DC1", "DC3")),
    cut_at_s: float = 0.5,
    repair_at_s: float = 1.5,
    stagger_s: float = 0.25,
    stranded_timeout_s: Optional[float] = 0.5,
) -> Scenario:
    """One conduit cut takes several links down atomically.

    The default cuts the three low-delay candidates out of DC1 in one
    stroke — the correlated version of :func:`cascading_failure`: instead
    of losing candidates one by one, the fleet loses them all at the same
    instant and watches them splice back one at a time (``stagger_s``
    apart from ``repair_at_s``).
    """
    if not links:
        raise ValueError("conduit_cut needs at least one link")
    if repair_at_s <= cut_at_s:
        raise ValueError("repair_at_s must come after cut_at_s")
    return Scenario(
        name="conduit-cut",
        events=(
            SRLGFailure(
                cut_at_s,
                name=name,
                links=tuple(links),
                recover_at_s=repair_at_s,
                stagger_s=stagger_s,
            ),
        ),
        stranded_timeout_s=stranded_timeout_s,
        description=(
            f"conduit {name!r} ({len(links)} links) cut at {cut_at_s:g}s, "
            f"spliced from {repair_at_s:g}s every {stagger_s:g}s"
        ),
    )


def regional_power_outage(
    region: str = "west",
    start_at_s: float = 0.5,
    duration_s: float = 1.0,
    survives_redundancy: str = "2N",
    degraded_factor: float = 0.5,
    stranded_timeout_s: Optional[float] = 0.5,
) -> Scenario:
    """A regional utility-power event with per-DC redundancy downgrade.

    Every DC in ``region`` is hit; facilities provisioned at or above
    ``survives_redundancy`` (on the testbed: the 2N endpoints DC1/DC8)
    ride through on their spare feed at ``degraded_factor`` x capacity,
    while the rest black out entirely for the window.
    """
    return Scenario(
        name="regional-power-outage",
        events=(
            RegionalPowerEvent(
                start_at_s,
                region=region,
                duration_s=duration_s,
                survives_redundancy=survives_redundancy,
                degraded_factor=degraded_factor,
            ),
        ),
        stranded_timeout_s=stranded_timeout_s,
        description=(
            f"power event in {region!r} at {start_at_s:g}s for {duration_s:g}s "
            f"(>= {survives_redundancy} degrades to x{degraded_factor:g})"
        ),
    )


def maintenance_calendar(
    dc: str = "DC5",
    first_at_s: float = 0.5,
    window_s: float = 0.3,
    period_s: float = 1.0,
    occurrences: int = 3,
    stranded_timeout_s: Optional[float] = 0.5,
) -> Scenario:
    """A recurring maintenance calendar for one DC.

    Compiles to ``occurrences`` concrete maintenance windows (one every
    ``period_s``), modelling the weekly-patch-window pattern rather than a
    one-off drain; recovery metrics are reported per window.
    """
    return Scenario(
        name="maintenance-calendar",
        events=(
            MaintenanceCalendar(
                first_at_s,
                dc=dc,
                window_s=window_s,
                period_s=period_s,
                occurrences=occurrences,
            ),
        ),
        stranded_timeout_s=stranded_timeout_s,
        description=(
            f"{occurrences} maintenance windows of {window_s:g}s on {dc}, "
            f"every {period_s:g}s from {first_at_s:g}s"
        ),
    )


#: registry of canned scenario builders, keyed by the spec-facing name
SCENARIO_BUILDERS: Dict[str, Callable[..., Scenario]] = {
    "single-link-cut": single_link_cut,
    "cascading-failure": cascading_failure,
    "diurnal-surge": diurnal_surge,
    "rolling-maintenance": rolling_maintenance,
    "conduit-cut": conduit_cut,
    "regional-power-outage": regional_power_outage,
    "maintenance-calendar": maintenance_calendar,
}


def scenario_names() -> List[str]:
    """Names accepted by :func:`get_scenario` (and by experiment specs)."""
    return sorted(SCENARIO_BUILDERS)


def get_scenario(name: str, **kwargs) -> Scenario:
    """Build a canned scenario by name.

    Raises:
        KeyError: for unknown names (message lists the known ones).
    """
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None
    return builder(**kwargs)
