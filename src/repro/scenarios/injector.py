"""Scenario injection: scheduling timeline events on a live simulation.

The :class:`ScenarioInjector` is created by
:class:`~repro.simulator.fluid.FluidSimulation` when a scenario is passed,
and does three things:

1. **install** — validates the scenario against the simulation's topology,
   pre-generates surge traffic (deterministic, seeded, flow ids offset far
   above the base workload) and schedules every event on the engine heap;
2. **fire** — when a state event (link down/up, capacity change, DC
   maintenance) pops off the heap it mutates the runtime network, forces an
   immediate port-liveness sample (the data-plane "port down" signal the
   paper's switches see in real time) and asks the simulation to re-evaluate
   every in-flight flow, which drives the lazy flow-cache invalidation path
   for real;
3. **account** — the simulation calls back as flows are disrupted,
   re-routed, restored or failed, and the injector attributes each
   transition to the event that caused it, producing per-event recovery
   metrics (:class:`EventOutcome`) surfaced through
   :class:`~repro.simulator.fluid.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from .events import (
    DCMaintenance,
    RegionalPowerEvent,
    Scenario,
    ScenarioEvent,
    SRLGFailure,
    TrafficDrain,
    TrafficSurge,
)

__all__ = ["EventOutcome", "ScenarioMetrics", "ScenarioInjector", "SURGE_FLOW_ID_BASE"]

#: surge flow ids start here; each surge event gets its own id block so
#: injected flows never collide with the base traffic matrix
SURGE_FLOW_ID_BASE = 1_000_000
#: id block reserved per surge event
_SURGE_ID_STRIDE = 100_000

#: event kinds whose *application* can take paths down; disruptions found
#: outside an apply (periodic sweeps) are attributed to the most recent one
DISRUPTIVE_KINDS = frozenset(
    {"link-down", "dc-maintenance", "srlg-failure", "regional-power"}
)


@dataclass
class EventOutcome:
    """Recovery metrics of one scenario event.

    Attributes:
        index: position in the compiled (recurring events expanded,
            time-sorted) timeline.
        kind: event kind string (``"link-down"``, ...).
        description: the event's one-line summary.
        scheduled_s: when the event was supposed to fire.
        applied_s: when it actually fired (``None`` when the run ended
            before the event's time).
        reverted_s: when a windowed event (DC maintenance) ended.
        flows_disrupted: in-flight flows whose path lost a link because of
            this event.
        flows_rerouted: disrupted flows moved onto a healthy path.
        flows_restored: disrupted flows whose original path came back
            before a re-route succeeded.
        flows_failed: disrupted flows explicitly failed after the
            scenario's stranded timeout.
        flows_injected: demands added by a traffic surge (scheduled at
            install time; they only arrive if the run reaches them).
        flows_cancelled: pending demands removed by a traffic drain.
        links_affected: directed runtime links this event failed or
            degraded when it fired (0 for traffic events and recoveries).
        reroute_latencies_s: per-flow delay between disruption and being
            re-hashed onto a healthy alternative path (the fast-failover
            latency).
        restore_latencies_s: per-flow delay between disruption and the
            original path healing in place — repair waits, kept separate
            so they do not inflate the failover latency.
    """

    index: int
    kind: str
    description: str
    scheduled_s: float
    applied_s: Optional[float] = None
    reverted_s: Optional[float] = None
    flows_disrupted: int = 0
    flows_rerouted: int = 0
    flows_restored: int = 0
    flows_failed: int = 0
    flows_injected: int = 0
    flows_cancelled: int = 0
    links_affected: int = 0
    reroute_latencies_s: List[float] = field(default_factory=list)
    restore_latencies_s: List[float] = field(default_factory=list)

    @property
    def mean_reroute_latency_s(self) -> float:
        """Mean disruption-to-reroute latency (0 when none)."""
        if not self.reroute_latencies_s:
            return 0.0
        return sum(self.reroute_latencies_s) / len(self.reroute_latencies_s)

    @property
    def max_reroute_latency_s(self) -> float:
        """Worst disruption-to-reroute latency (0 when none)."""
        return max(self.reroute_latencies_s, default=0.0)

    @property
    def mean_restore_latency_s(self) -> float:
        """Mean disruption-to-in-place-repair wait (0 when none)."""
        if not self.restore_latencies_s:
            return 0.0
        return sum(self.restore_latencies_s) / len(self.restore_latencies_s)


@dataclass
class ScenarioMetrics:
    """Aggregated per-event outcomes of one scenario run."""

    scenario_name: str
    outcomes: List[EventOutcome] = field(default_factory=list)

    def outcome_for(self, index: int) -> EventOutcome:
        """The outcome of the ``index``-th (time-sorted) event."""
        return self.outcomes[index]

    @property
    def total_disrupted(self) -> int:
        """Disruptions across all events."""
        return sum(o.flows_disrupted for o in self.outcomes)

    @property
    def total_rerouted(self) -> int:
        """Successful re-routes across all events."""
        return sum(o.flows_rerouted for o in self.outcomes)

    @property
    def total_restored(self) -> int:
        """In-place path recoveries across all events."""
        return sum(o.flows_restored for o in self.outcomes)

    @property
    def total_failed(self) -> int:
        """Explicitly failed flows across all events."""
        return sum(o.flows_failed for o in self.outcomes)

    @property
    def total_injected(self) -> int:
        """Surge-injected demands across all events."""
        return sum(o.flows_injected for o in self.outcomes)

    @property
    def total_cancelled(self) -> int:
        """Drain-cancelled demands across all events."""
        return sum(o.flows_cancelled for o in self.outcomes)

    def reroute_latencies_s(self) -> List[float]:
        """Every recorded re-route (fast-failover) latency."""
        return [lat for o in self.outcomes for lat in o.reroute_latencies_s]

    def restore_latencies_s(self) -> List[float]:
        """Every recorded in-place-repair wait."""
        return [lat for o in self.outcomes for lat in o.restore_latencies_s]


class ScenarioInjector:
    """Schedules a :class:`Scenario` onto one simulation and accounts for it."""

    def __init__(self, scenario: Scenario, sim) -> None:
        """Bind a scenario to a simulation (validates against its topology).

        Args:
            scenario: the declarative timeline.
            sim: the owning :class:`~repro.simulator.fluid.FluidSimulation`.

        Raises:
            ValueError: when the scenario does not fit the topology.
        """
        scenario.validate(sim.network.topology)
        self.scenario = scenario
        self.sim = sim
        self._events = scenario.compiled_events()
        self.metrics = ScenarioMetrics(
            scenario_name=scenario.name,
            outcomes=[
                EventOutcome(
                    index=i,
                    kind=event.kind,
                    description=event.describe(),
                    scheduled_s=event.time_s,
                )
                for i, event in enumerate(self._events)
            ],
        )
        #: outcome currently applying (so disruptions are attributed to it)
        self._current: Optional[EventOutcome] = None
        #: most recent outcome whose application can take paths down
        #: (link-down / dc-maintenance start) — sweep-detected disruptions
        #: (e.g. an arrival routed onto an already-dead path) are charged
        #: to it rather than to an unrelated or recovery event
        self._last_disruptive_outcome: Optional[EventOutcome] = None
        #: flow id -> (owning outcome, disruption time)
        self._open_disruptions: Dict[int, Tuple[EventOutcome, float]] = {}

    def scheduled_event_times(self) -> frozenset:
        """Every instant at which this scenario schedules an engine event.

        The batched-arrival path uses these as tie guards: an arrival whose
        timestamp exactly equals a not-yet-fired scenario event must not be
        admitted early, because the scenario event (scheduled first, lower
        sequence number) fires before the arrival would have.
        """
        times = set()
        for event in self._events:
            times.add(event.time_s)
            if isinstance(event, (DCMaintenance, RegionalPowerEvent)):
                times.add(event.end_s)
            elif isinstance(event, SRLGFailure):
                times.update(event.recovery_times())
        return frozenset(times)

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #
    def install(self) -> None:
        """Schedule every event on the simulation's engine heap."""
        for event, outcome in zip(self._events, self.metrics.outcomes):
            if isinstance(event, TrafficSurge):
                demands = self._surge_demands(event, outcome.index)
                outcome.flows_injected = len(demands)
                self.sim.inject_demands(demands)
                # the demands are scheduled now, but the surge only counts
                # as fired if the run actually reaches its start time
                self.sim.engine.schedule(
                    event.time_s,
                    lambda o=outcome: setattr(o, "applied_s", self.sim.engine.now),
                )
                continue
            self.sim.engine.schedule(
                event.time_s,
                lambda e=event, o=outcome: self._fire(e, o),
            )
            if isinstance(event, (DCMaintenance, RegionalPowerEvent)):
                self.sim.engine.schedule(
                    event.end_s,
                    lambda e=event, o=outcome: self._fire_revert(e, o),
                )
            elif isinstance(event, SRLGFailure):
                for link_index, repair_s in enumerate(event.recovery_times()):
                    self.sim.engine.schedule(
                        repair_s,
                        lambda e=event, o=outcome, i=link_index: self._fire_revert_link(
                            e, o, i
                        ),
                    )

    def _surge_demands(self, event: TrafficSurge, index: int):
        """Pre-generate one surge's demands (deterministic, ids offset)."""
        from ..workloads import TrafficConfig, TrafficGenerator

        num_flows = event.num_flows
        generator_config = TrafficConfig(
            workload=event.workload,
            load=event.load,
            num_flows=num_flows if num_flows is not None else 1,
            pairs=list(event.pairs),
            seed=event.seed + index,
            start_s=event.time_s,
        )
        generator = TrafficGenerator(
            self.sim.network.topology, self.sim.network.pathset, generator_config
        )
        if num_flows is None:
            # derive the count from the surge load so the batch spans
            # roughly duration_s (expected_duration_s is count / rate)
            rate = generator_config.num_flows / max(
                generator.expected_duration_s(), 1e-12
            )
            num_flows = max(1, int(round(rate * event.duration_s)))
            generator_config = replace(generator_config, num_flows=num_flows)
            generator = TrafficGenerator(
                self.sim.network.topology, self.sim.network.pathset, generator_config
            )
        offset = SURGE_FLOW_ID_BASE + index * _SURGE_ID_STRIDE
        return [replace(d, flow_id=offset + d.flow_id) for d in generator.generate()]

    # ------------------------------------------------------------------ #
    # firing
    # ------------------------------------------------------------------ #
    def _fire(self, event: ScenarioEvent, outcome: EventOutcome) -> None:
        now = self.sim.engine.now
        outcome.applied_s = now
        if isinstance(event, TrafficDrain):
            outcome.flows_cancelled = self.sim.cancel_pending(event.matches)
            return
        affected = getattr(event, "affected_link_keys", None)
        if affected is not None:
            outcome.links_affected = len(affected(self.sim.network))
        event.apply(self.sim.network, now)
        self._after_state_change(outcome, now, disruptive=event.kind in DISRUPTIVE_KINDS)

    def _fire_revert(self, event: ScenarioEvent, outcome: EventOutcome) -> None:
        """End a windowed event (DC maintenance, regional power)."""
        now = self.sim.engine.now
        outcome.reverted_s = now
        event.revert(self.sim.network, now)
        self._after_state_change(outcome, now, disruptive=False)

    def _fire_revert_link(
        self, event: SRLGFailure, outcome: EventOutcome, link_index: int
    ) -> None:
        """Repair one link of an SRLG (staggered recovery).

        ``reverted_s`` is overwritten on each repair, so after the last one
        it records when the whole group finished recovering.
        """
        now = self.sim.engine.now
        outcome.reverted_s = now
        event.revert_link(self.sim.network, link_index, now)
        self._after_state_change(outcome, now, disruptive=False)

    def _after_state_change(
        self, outcome: EventOutcome, now: float, disruptive: bool
    ) -> None:
        """Propagate a topology mutation into the data plane immediately.

        The port-liveness sample models the real-time "port down/up" signal
        the paper's switch ASIC sees; it refreshes every router's liveness
        tracker so that the subsequent flow re-evaluation exercises the lazy
        flow-cache invalidation path rather than a control-plane rebuild.
        """
        self.sim.network.sample_all_ports(now)
        if disruptive:
            self._last_disruptive_outcome = outcome
            self._current = outcome
        try:
            self.sim.revalidate_flows(now)
        finally:
            self._current = None

    # ------------------------------------------------------------------ #
    # accounting callbacks (invoked by FluidSimulation)
    # ------------------------------------------------------------------ #
    def on_flow_disrupted(self, flow, now: float) -> None:
        """A flow's path just lost a link."""
        outcome = self._current or self._last_disruptive_outcome
        if outcome is None:
            return
        outcome.flows_disrupted += 1
        self._open_disruptions[flow.flow_id] = (outcome, now)

    def on_flow_rerouted(self, flow, now: float) -> None:
        """A disrupted flow landed on a healthy alternative path."""
        entry = self._open_disruptions.pop(flow.flow_id, None)
        if entry is None:
            return
        outcome, disrupted_s = entry
        outcome.flows_rerouted += 1
        outcome.reroute_latencies_s.append(now - disrupted_s)

    def on_flow_restored(self, flow, now: float) -> None:
        """A disrupted flow's original path came back before a re-route."""
        entry = self._open_disruptions.pop(flow.flow_id, None)
        if entry is None:
            return
        outcome, disrupted_s = entry
        outcome.flows_restored += 1
        outcome.restore_latencies_s.append(now - disrupted_s)

    def on_flow_failed(self, flow, now: float) -> None:
        """A disrupted flow was explicitly failed (stranded timeout)."""
        entry = self._open_disruptions.pop(flow.flow_id, None)
        if entry is None:
            return
        outcome, _ = entry
        outcome.flows_failed += 1
