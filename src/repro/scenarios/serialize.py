"""JSON (de)serialization for scenarios and fuzz corpus fixtures.

Two layers:

* :func:`event_to_dict` / :func:`event_from_dict` and
  :func:`scenario_to_dict` / :func:`scenario_from_dict` — a stable,
  kind-keyed JSON form for declarative timelines.  Events are frozen
  dataclasses of plain scalars and string tuples, so the mapping is
  mechanical; tuple fields round-trip through JSON lists.
* :func:`fuzz_case_to_dict` / :func:`fuzz_case_from_dict` — the corpus
  fixture schema used by ``tests/scenarios/fuzz/corpus``: a fuzz case
  (topology name, demand matrix, timeline, congestion control fleet,
  seed) captured from a hypothesis falsifying example and replayed as a
  plain parametrized regression test, no hypothesis required.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple, Type

from ..simulator.flow import FlowDemand
from .events import (
    CapacityChange,
    DCMaintenance,
    LinkDown,
    LinkUp,
    MaintenanceCalendar,
    RegionalPowerEvent,
    Scenario,
    ScenarioEvent,
    SRLGFailure,
    TrafficDrain,
    TrafficSurge,
)

__all__ = [
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
    "scenario_to_dict",
    "scenario_from_dict",
    "fuzz_case_to_dict",
    "fuzz_case_from_dict",
]

#: kind string -> event class, for deserialization
EVENT_TYPES: Dict[str, Type[ScenarioEvent]] = {
    cls.kind: cls
    for cls in (
        LinkDown,
        LinkUp,
        CapacityChange,
        TrafficSurge,
        TrafficDrain,
        DCMaintenance,
        SRLGFailure,
        RegionalPowerEvent,
        MaintenanceCalendar,
    )
}

#: event fields holding tuples of (str, str) pairs (JSON lists of lists)
_PAIR_TUPLE_FIELDS = ("links", "pairs")


def event_to_dict(event: ScenarioEvent) -> dict:
    """One event as a JSON-compatible dict, tagged with its kind."""
    payload = dataclasses.asdict(event)
    payload["kind"] = event.kind
    return payload


def event_from_dict(payload: dict) -> ScenarioEvent:
    """Rebuild an event from :func:`event_to_dict` output.

    Raises:
        KeyError: on an unknown event kind.
    """
    data = dict(payload)
    kind = data.pop("kind")
    try:
        cls = EVENT_TYPES[kind]
    except KeyError:
        raise KeyError(
            f"unknown event kind {kind!r}; known: {sorted(EVENT_TYPES)}"
        ) from None
    for field in _PAIR_TUPLE_FIELDS:
        if field in data and data[field] is not None:
            data[field] = tuple(tuple(pair) for pair in data[field])
    return cls(**data)


def scenario_to_dict(scenario: Scenario) -> dict:
    """A scenario (name, timeline, stranded timeout) as a JSON dict."""
    return {
        "name": scenario.name,
        "description": scenario.description,
        "stranded_timeout_s": scenario.stranded_timeout_s,
        "events": [event_to_dict(e) for e in scenario.events],
    }


def scenario_from_dict(payload: dict) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    return Scenario(
        name=payload["name"],
        events=tuple(event_from_dict(e) for e in payload["events"]),
        stranded_timeout_s=payload.get("stranded_timeout_s"),
        description=payload.get("description", ""),
    )


def fuzz_case_to_dict(case) -> dict:
    """A fuzz case as a corpus fixture dict (see module docstring)."""
    return {
        "topology": case.topology_name,
        "cc": list(list(entry) for entry in case.cc)
        if isinstance(case.cc, tuple)
        else case.cc,
        "seed": case.seed,
        "scenario": scenario_to_dict(case.scenario),
        "demands": [
            [d.flow_id, d.src_dc, d.dst_dc, d.src_host, d.dst_host, d.size_bytes, d.arrival_s]
            for d in case.demands
        ],
    }


def fuzz_case_from_dict(payload: dict):
    """Rebuild a :class:`~repro.scenarios.fuzz.FuzzCase` from a fixture.

    Imported lazily so this module stays usable without the optional
    ``hypothesis`` dependency that :mod:`repro.scenarios.fuzz` requires.
    """
    from .fuzz import FuzzCase

    cc = payload["cc"]
    if isinstance(cc, list):
        cc = tuple((name, float(share)) for name, share in cc)
    demands: Tuple[FlowDemand, ...] = tuple(
        FlowDemand(
            flow_id=int(row[0]),
            src_dc=row[1],
            dst_dc=row[2],
            src_host=int(row[3]),
            dst_host=int(row[4]),
            size_bytes=int(row[5]),
            arrival_s=float(row[6]),
        )
        for row in payload["demands"]
    )
    return FuzzCase(
        topology_name=payload["topology"],
        scenario=scenario_from_dict(payload["scenario"]),
        demands=demands,
        cc=cc,
        seed=int(payload["seed"]),
    )
