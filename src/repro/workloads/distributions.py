"""Published datacenter flow-size distributions.

The paper's artifact ships three flow-size CDFs (``traffic_gen/flowCDF/``):
WebSearch (the DCTCP web-search workload), AliStorage2019 (Alibaba storage,
from the HPCC artifact) and FbHdp (Facebook Hadoop).  The exact trace files
are not redistributable here, so this module embeds close piecewise-linear
approximations of the published distributions — heavy-tailed, with the means
and size ranges reported in the corresponding papers — which is what the
evaluation actually depends on (documented substitution, see DESIGN.md).

All sizes are in bytes.
"""

from __future__ import annotations

from typing import Dict, List

from .cdf import FlowSizeCDF

__all__ = [
    "WEB_SEARCH",
    "ALI_STORAGE",
    "FB_HADOOP",
    "WORKLOADS",
    "get_workload",
    "available_workloads",
]

#: DCTCP web-search workload: bimodal, most flows tiny, a heavy tail of
#: multi-megabyte responses (mean ~1.6 MB).
WEB_SEARCH = FlowSizeCDF.from_pairs(
    "websearch",
    [
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_333_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 1.00),
    ],
)

#: Alibaba storage workload (HPCC artifact): dominated by small requests with
#: a tail of ~1 MB chunk writes.
ALI_STORAGE = FlowSizeCDF.from_pairs(
    "alistorage",
    [
        (1_000, 0.25),
        (2_000, 0.40),
        (4_000, 0.55),
        (8_000, 0.65),
        (16_000, 0.70),
        (64_000, 0.80),
        (256_000, 0.90),
        (1_048_576, 0.97),
        (2_097_152, 1.00),
    ],
)

#: Facebook Hadoop workload: mostly sub-kilobyte RPCs with a long shuffle
#: tail into the tens of megabytes.
FB_HADOOP = FlowSizeCDF.from_pairs(
    "fbhadoop",
    [
        (300, 0.30),
        (1_000, 0.50),
        (2_000, 0.60),
        (10_000, 0.70),
        (100_000, 0.80),
        (1_000_000, 0.90),
        (10_000_000, 0.99),
        (30_000_000, 1.00),
    ],
)

WORKLOADS: Dict[str, FlowSizeCDF] = {
    "websearch": WEB_SEARCH,
    "alistorage": ALI_STORAGE,
    "fbhadoop": FB_HADOOP,
}


def available_workloads() -> List[str]:
    """Names of the embedded workloads."""
    return sorted(WORKLOADS)


def get_workload(name: str) -> FlowSizeCDF:
    """Look up a workload CDF by name (case-insensitive).

    Raises:
        KeyError: when the name is unknown.
    """
    key = name.lower()
    if key not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; available: {available_workloads()}")
    return WORKLOADS[key]
