"""Flow-size CDFs.

The evaluation samples flow sizes from the published flow-size distributions
(WebSearch, AliStorage2019, Facebook Hadoop), supplied as piecewise-linear
CDFs exactly like the ``flowCDF`` text files in the paper's artifact.  This
module implements the CDF representation: validation, mean computation
(needed to convert a target load into an arrival rate) and inverse-transform
sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["FlowSizeCDF"]


@dataclass(frozen=True)
class FlowSizeCDF:
    """A piecewise-linear flow-size CDF.

    Attributes:
        name: human-readable workload name.
        points: monotonically non-decreasing (size_bytes, cumulative
            probability) pairs; the last probability must be 1.0.
    """

    name: str
    points: Tuple[Tuple[float, float], ...]

    # ------------------------------------------------------------------ #
    # construction / validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_pairs(name: str, pairs: Sequence[Tuple[float, float]]) -> "FlowSizeCDF":
        """Build and validate a CDF from (size, probability) pairs.

        Raises:
            ValueError: when the pairs are empty, not sorted, contain
                probabilities outside [0, 1], or do not end at probability 1.
        """
        if not pairs:
            raise ValueError("CDF needs at least one point")
        pts = tuple((float(s), float(p)) for s, p in pairs)
        prev_size, prev_prob = -1.0, -1.0
        for size, prob in pts:
            if size <= 0:
                raise ValueError(f"{name}: flow sizes must be positive, got {size}")
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name}: probability {prob} outside [0, 1]")
            if size < prev_size or prob < prev_prob:
                raise ValueError(f"{name}: CDF points must be non-decreasing")
            prev_size, prev_prob = size, prob
        if abs(pts[-1][1] - 1.0) > 1e-9:
            raise ValueError(f"{name}: CDF must end at probability 1.0")
        return FlowSizeCDF(name=name, points=pts)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def mean_bytes(self) -> float:
        """Mean flow size implied by the piecewise-linear CDF."""
        sizes = [p[0] for p in self.points]
        probs = [p[1] for p in self.points]
        mean = sizes[0] * probs[0]
        for i in range(1, len(sizes)):
            mass = probs[i] - probs[i - 1]
            if mass <= 0:
                continue
            # linear interpolation between consecutive points: average size
            mean += mass * (sizes[i - 1] + sizes[i]) / 2.0
        return mean

    def min_bytes(self) -> float:
        """Smallest flow size in the support."""
        return self.points[0][0]

    def max_bytes(self) -> float:
        """Largest flow size in the support."""
        return self.points[-1][0]

    def quantile(self, prob: float) -> float:
        """Inverse CDF: the flow size at cumulative probability ``prob``."""
        if not 0.0 <= prob <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        sizes = [p[0] for p in self.points]
        probs = [p[1] for p in self.points]
        if prob <= probs[0]:
            return sizes[0]
        for i in range(1, len(sizes)):
            if prob <= probs[i]:
                span = probs[i] - probs[i - 1]
                if span <= 0:
                    return sizes[i]
                frac = (prob - probs[i - 1]) / span
                value = sizes[i - 1] + frac * (sizes[i] - sizes[i - 1])
                # Interpolation can overshoot the segment endpoints by one
                # ulp; clamp so quantiles stay inside the CDF support.
                return min(max(value, sizes[i - 1]), sizes[i])
        return sizes[-1]

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` flow sizes (bytes, integer, at least 1)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        u = rng.random(count)
        sizes = np.array([self.quantile(x) for x in u])
        return np.maximum(1, np.rint(sizes)).astype(np.int64)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowSizeCDF({self.name}, mean={self.mean_bytes() / 1e3:.1f} kB, "
            f"max={self.max_bytes() / 1e6:.1f} MB)"
        )
