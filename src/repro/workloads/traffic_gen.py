"""Synthetic inter-DC traffic generation.

Mirrors the paper artifact's ``traffic_gen.py``: given a flow-size CDF and a
target load, it generates an open-loop Poisson arrival process of flows
between randomly paired senders and receivers.  Two pairing modes are
supported:

* ``pair`` — all traffic between one ordered DC pair (the testbed experiments
  send between DC1 and DC8, the case study between DC1 and DC13);
* ``all_to_all`` — senders and receivers drawn uniformly from all DCs (the
  system-wide 13-DC experiments).

Load definition: the offered load is expressed as a fraction of the aggregate
inter-DC egress capacity of the participating *source* datacenters, i.e. a
load of 0.3 drives each source DC's inter-DC uplinks at roughly 30 % on
average.  This matches the artifact's convention of scaling the Poisson
arrival rate so that ``load = lambda * mean_flow_size / capacity``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..simulator.flow import FlowDemand
from ..topology.graph import Topology
from ..topology.paths import PathSet
from .cdf import FlowSizeCDF
from .distributions import get_workload

__all__ = ["TrafficConfig", "TrafficGenerator", "aggregate_egress_capacity"]


def aggregate_egress_capacity(topology: Topology, source_dcs: Sequence[str]) -> float:
    """Total inter-DC egress capacity (bps) of the given source DCs."""
    total = 0.0
    sources = set(source_dcs)
    for spec in topology.inter_dc_links():
        if spec.src in sources:
            total += spec.cap_bps
    return total


@dataclass
class TrafficConfig:
    """Parameters of one synthetic traffic matrix.

    Attributes:
        workload: workload name (``"websearch"``, ``"alistorage"``,
            ``"fbhadoop"``) or a :class:`FlowSizeCDF` instance.
        load: offered load as a fraction of the source DCs' aggregate
            inter-DC egress capacity (0.3 / 0.5 / 0.8 in the paper).
        num_flows: how many flows to generate.
        pairs: ``"all_to_all"`` or an explicit list of ordered (src, dst) DC
            pairs (e.g. ``[("DC1", "DC8"), ("DC8", "DC1")]``).
        seed: RNG seed for sizes, arrivals and host assignment.
        start_s: arrival time of the first flow.
    """

    workload: object = "websearch"
    load: float = 0.3
    num_flows: int = 400
    pairs: object = "all_to_all"
    seed: int = 42
    start_s: float = 0.0

    def resolve_cdf(self) -> FlowSizeCDF:
        """The flow-size CDF named (or carried) by :attr:`workload`."""
        if isinstance(self.workload, FlowSizeCDF):
            return self.workload
        return get_workload(str(self.workload))

    def validate(self) -> None:
        """Sanity-check the config.

        Raises:
            ValueError: on non-positive load or flow counts.
        """
        if not 0 < self.load <= 1.5:
            raise ValueError("load must be in (0, 1.5]")
        if self.num_flows <= 0:
            raise ValueError("num_flows must be positive")


class TrafficGenerator:
    """Generates :class:`~repro.simulator.flow.FlowDemand` lists."""

    def __init__(self, topology: Topology, pathset: PathSet, config: TrafficConfig):
        config.validate()
        self.topology = topology
        self.pathset = pathset
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._pairs = self._resolve_pairs()

    # ------------------------------------------------------------------ #
    def _resolve_pairs(self) -> List[Tuple[str, str]]:
        pairs = self.config.pairs
        if pairs == "all_to_all":
            # reachability, not candidates(): with a lazy path set the
            # latter would materialize every pair up front
            resolved = [
                (src, dst)
                for (src, dst) in self.pathset.all_pairs()
                if self.pathset.has_path(src, dst)
            ]
        else:
            resolved = [(str(a), str(b)) for a, b in pairs]
            for src, dst in resolved:
                if src == dst:
                    raise ValueError("traffic pairs must connect distinct DCs")
                if not self.pathset.has_path(src, dst):
                    raise ValueError(f"no candidate path for pair ({src}, {dst})")
        if not resolved:
            raise ValueError("no usable DC pairs for traffic generation")
        return resolved

    # ------------------------------------------------------------------ #
    def generate(self) -> List[FlowDemand]:
        """Generate the configured number of flow demands."""
        cdf = self.config.resolve_cdf()
        mean_size_bits = cdf.mean_bytes() * 8.0

        source_dcs = sorted({src for src, _ in self._pairs})
        capacity = aggregate_egress_capacity(self.topology, source_dcs)
        if capacity <= 0:
            raise ValueError("source DCs have no inter-DC egress capacity")

        arrival_rate = self.config.load * capacity / mean_size_bits
        inter_arrivals = self._rng.exponential(
            1.0 / arrival_rate, size=self.config.num_flows
        )
        arrivals = self.config.start_s + np.cumsum(inter_arrivals)
        sizes = cdf.sample(self._rng, self.config.num_flows)

        pair_idx = self._rng.integers(0, len(self._pairs), size=self.config.num_flows)
        demands: List[FlowDemand] = []
        for i in range(self.config.num_flows):
            src_dc, dst_dc = self._pairs[int(pair_idx[i])]
            src_host = self._pick_host(src_dc)
            dst_host = self._pick_host(dst_dc)
            demands.append(
                FlowDemand(
                    flow_id=i,
                    src_dc=src_dc,
                    dst_dc=dst_dc,
                    src_host=src_host,
                    dst_host=dst_host,
                    size_bytes=int(sizes[i]),
                    arrival_s=float(arrivals[i]),
                )
            )
        return demands

    def _pick_host(self, dc: str) -> int:
        group = self.topology.host_groups.get(dc)
        count = group.count if group else 1
        return int(self._rng.integers(0, max(1, count)))

    # ------------------------------------------------------------------ #
    def expected_duration_s(self) -> float:
        """Rough expected span of the arrival process (for sizing runs)."""
        cdf = self.config.resolve_cdf()
        mean_size_bits = cdf.mean_bytes() * 8.0
        source_dcs = sorted({src for src, _ in self._pairs})
        capacity = aggregate_egress_capacity(self.topology, source_dcs)
        arrival_rate = self.config.load * capacity / mean_size_bits
        return self.config.num_flows / arrival_rate
