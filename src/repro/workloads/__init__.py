"""Workload models: flow-size CDFs and the synthetic traffic generator."""

from .cdf import FlowSizeCDF
from .distributions import (
    ALI_STORAGE,
    FB_HADOOP,
    WEB_SEARCH,
    WORKLOADS,
    available_workloads,
    get_workload,
)
from .traffic_gen import TrafficConfig, TrafficGenerator, aggregate_egress_capacity

__all__ = [
    "FlowSizeCDF",
    "WEB_SEARCH",
    "ALI_STORAGE",
    "FB_HADOOP",
    "WORKLOADS",
    "available_workloads",
    "get_workload",
    "TrafficConfig",
    "TrafficGenerator",
    "aggregate_egress_capacity",
]
