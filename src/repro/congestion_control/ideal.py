"""Idealised congestion-control stand-ins.

Useful for tests and ablations: :class:`FixedRate` always sends at a constant
rate (isolating routing effects from CC dynamics) and :class:`IdealCC`
instantly matches the bottleneck's fair share using un-delayed feedback
(an upper bound no real long-haul CC can reach).
"""

from __future__ import annotations

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, register_cc

__all__ = ["FixedRate", "IdealCC"]


@register_cc
class FixedRate(CongestionControl):
    """Sends at the line rate forever; never reacts to congestion."""

    name = "fixed"

    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Ignore feedback."""
        self.feedback_count += 1

    def on_interval(self, dt: float, now: float) -> None:
        """Nothing to do."""


@register_cc
class IdealCC(CongestionControl):
    """Adjusts instantly toward the utilisation target on every feedback.

    Not a real protocol — it ignores the fact that its feedback is an RTT
    old — but useful as a best-case reference in sensitivity tests.
    """

    name = "ideal"

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        target_utilization: float = 0.95,
    ) -> None:
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.target_utilization = target_utilization

    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Scale the rate so the bottleneck sits at the target utilisation."""
        self.feedback_count += 1
        utilization = max(signal.max_utilization, 1e-6)
        self.rate_bps *= self.target_utilization / utilization
        self._clamp()

    def on_interval(self, dt: float, now: float) -> None:
        """Gentle probing upward so the flow reclaims freed capacity."""
        self.rate_bps *= 1.001
        self._clamp()
