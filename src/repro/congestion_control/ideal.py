"""Idealised congestion-control stand-ins.

Useful for tests and ablations: :class:`FixedRate` always sends at a constant
rate (isolating routing effects from CC dynamics) and :class:`IdealCC`
instantly matches the bottleneck's fair share using un-delayed feedback
(an upper bound no real long-haul CC can reach).
"""

from __future__ import annotations

import numpy as np

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, cc_param, register_cc

__all__ = ["FixedRate", "IdealCC"]


@register_cc
class FixedRate(CongestionControl):
    """Sends at the line rate forever; never reacts to congestion."""

    name = "fixed"

    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Ignore feedback."""
        self.feedback_count += 1

    def on_interval(self, dt: float, now: float) -> None:
        """Nothing to do."""

    # ------------------------------------------------------------------ #
    # FlowTable slot batches: no algorithm state, so the kernels only
    # mirror the feedback bookkeeping.
    # ------------------------------------------------------------------ #
    @classmethod
    def feedback_batch_slots(
        cls, table, slots, generated_s, ecn, util, rtt, qd, now
    ) -> None:
        """In-place :meth:`on_feedback` over FlowTable rows ``slots``."""
        if len(slots):
            table.feedback_count[slots] += 1

    @classmethod
    def advance_batch_slots(cls, table, slots, dt: float, now: float) -> None:
        """Nothing to do."""


@register_cc
class IdealCC(CongestionControl):
    """Adjusts instantly toward the utilisation target on every feedback.

    Not a real protocol — it ignores the fact that its feedback is an RTT
    old — but useful as a best-case reference in sensitivity tests.

    The model is stateless beyond the sending rate, so its block carries
    only the replicated parameters the in-place slot kernels read.
    """

    name = "ideal"

    cc_columns = {
        "p_target": cc_param("target_utilization"),
        "p_line": cc_param("line_rate_bps"),
        "p_floor": cc_param("min_rate_bps"),
    }

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        target_utilization: float = 0.95,
    ) -> None:
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.target_utilization = target_utilization

    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Scale the rate so the bottleneck sits at the target utilisation."""
        self.feedback_count += 1
        utilization = max(signal.max_utilization, 1e-6)
        self.rate_bps *= self.target_utilization / utilization
        self._clamp()

    def on_interval(self, dt: float, now: float) -> None:
        """Gentle probing upward so the flow reclaims freed capacity."""
        self.rate_bps *= 1.001
        self._clamp()

    # ------------------------------------------------------------------ #
    # FlowTable slot batches: in-place column kernels, lane-for-lane
    # identical to on_feedback / on_interval above.
    # ------------------------------------------------------------------ #
    @classmethod
    def feedback_batch_slots(
        cls, table, slots, generated_s, ecn, util, rtt, qd, now
    ) -> None:
        """In-place :meth:`on_feedback` over FlowTable rows ``slots``."""
        if not len(slots):
            return
        block = table.cc_block(cls)
        table.feedback_count[slots] += 1
        # no boundary cast: feedback arrays arrive float64 (dtype-checked)
        utilization = np.maximum(util, 1e-6)
        rate = table.cc_rate_bps[slots] * (block.p_target[slots] / utilization)
        table.cc_rate_bps[slots] = np.minimum(
            block.p_line[slots], np.maximum(block.p_floor[slots], rate)
        )

    @classmethod
    def advance_batch_slots(cls, table, slots, dt: float, now: float) -> None:
        """In-place :meth:`on_interval` over FlowTable rows ``slots``."""
        if not len(slots):
            return
        block = table.cc_block(cls)
        rate = table.cc_rate_bps[slots] * 1.001
        table.cc_rate_bps[slots] = np.minimum(
            block.p_line[slots], np.maximum(block.p_floor[slots], rate)
        )
