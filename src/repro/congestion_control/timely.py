"""TIMELY congestion-control model (Mittal et al., SIGCOMM 2015).

TIMELY adjusts the sending rate from RTT measurements: below ``t_low`` it
increases additively, above ``t_high`` it decreases multiplicatively, and in
between it follows the RTT gradient.  The fluid simulation's RTT sample
(base RTT + total queueing delay along the path, delivered one RTT late) is
the input signal.
"""

from __future__ import annotations

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, register_cc

__all__ = ["Timely"]


@register_cc
class Timely(CongestionControl):
    """Rate-based TIMELY model driven by delayed RTT samples."""

    name = "timely"

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        ewma_alpha: float = 0.875,
        addstep_fraction: float = 0.02,
        beta: float = 0.8,
        t_low_extra_s: float = 50e-6,
        t_high_extra_s: float = 2e-3,
    ) -> None:
        """Create a TIMELY instance.

        Args:
            ewma_alpha: weight of the previous RTT-difference EWMA.
            addstep_fraction: additive-increase step as fraction of line rate.
            beta: multiplicative-decrease aggressiveness.
            t_low_extra_s: queueing delay below which we always increase.
            t_high_extra_s: queueing delay above which we always decrease.
        """
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.ewma_alpha = ewma_alpha
        self.addstep_bps = addstep_fraction * line_rate_bps
        self.beta = beta
        self.t_low_s = base_rtt_s + t_low_extra_s
        self.t_high_s = base_rtt_s + t_high_extra_s
        self._prev_rtt_s = base_rtt_s
        self._rtt_diff_s = 0.0
        self._hai_counter = 0

    # ------------------------------------------------------------------ #
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Gradient-based rate update from one RTT sample."""
        self.feedback_count += 1
        rtt = signal.rtt_s
        new_diff = rtt - self._prev_rtt_s
        self._prev_rtt_s = rtt
        self._rtt_diff_s = (
            self.ewma_alpha * self._rtt_diff_s + (1 - self.ewma_alpha) * new_diff
        )
        min_rtt = max(self.base_rtt_s, 1e-6)
        gradient = self._rtt_diff_s / min_rtt

        if rtt < self.t_low_s:
            self._hai_counter += 1
            step = self.addstep_bps * (5 if self._hai_counter >= 5 else 1)
            self.rate_bps += step
        elif rtt > self.t_high_s:
            self._hai_counter = 0
            self.rate_bps *= 1 - self.beta * (1 - self.t_high_s / rtt)
        elif gradient <= 0:
            self._hai_counter += 1
            step = self.addstep_bps * (5 if self._hai_counter >= 5 else 1)
            self.rate_bps += step
        else:
            self._hai_counter = 0
            self.rate_bps *= 1 - self.beta * min(1.0, gradient)
        self._clamp()

    def on_interval(self, dt: float, now: float) -> None:
        """TIMELY is ACK-clocked; nothing to do between feedback."""
