"""TIMELY congestion-control model (Mittal et al., SIGCOMM 2015).

TIMELY adjusts the sending rate from RTT measurements: below ``t_low`` it
increases additively, above ``t_high`` it decreases multiplicatively, and in
between it follows the RTT gradient.  The fluid simulation's RTT sample
(base RTT + total queueing delay along the path, delivered one RTT late) is
the input signal.
"""

from __future__ import annotations

import numpy as np

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, cc_param, cc_state, register_cc

__all__ = ["Timely"]


@register_cc
class Timely(CongestionControl):
    """Rate-based TIMELY model driven by delayed RTT samples.

    The RTT-gradient state (previous sample, difference EWMA, HAI counter)
    is block-resident while bound to a
    :class:`~repro.simulator.flow_table.FlowTable`; the slot-batch feedback
    kernel runs the exact scalar gradient update as in-place masked column
    operations.  TIMELY is ACK-clocked, so its periodic kernel is a no-op
    like :meth:`on_interval`.
    """

    name = "timely"

    cc_columns = {
        "prev_rtt": cc_state("_prev_rtt_s"),
        "rtt_diff": cc_state("_rtt_diff_s"),
        "hai": cc_state("_hai_counter", dtype="i8", py=int),
        "p_ewma": cc_param("ewma_alpha"),
        "p_add": cc_param("addstep_bps"),
        "p_beta": cc_param("beta"),
        "p_tlow": cc_param("t_low_s"),
        "p_thigh": cc_param("t_high_s"),
        "p_brtt": cc_param("base_rtt_s"),
        "p_line": cc_param("line_rate_bps"),
        "p_floor": cc_param("min_rate_bps"),
    }

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        ewma_alpha: float = 0.875,
        addstep_fraction: float = 0.02,
        beta: float = 0.8,
        t_low_extra_s: float = 50e-6,
        t_high_extra_s: float = 2e-3,
    ) -> None:
        """Create a TIMELY instance.

        Args:
            ewma_alpha: weight of the previous RTT-difference EWMA.
            addstep_fraction: additive-increase step as fraction of line rate.
            beta: multiplicative-decrease aggressiveness.
            t_low_extra_s: queueing delay below which we always increase.
            t_high_extra_s: queueing delay above which we always decrease.
        """
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.ewma_alpha = ewma_alpha
        self.addstep_bps = addstep_fraction * line_rate_bps
        self.beta = beta
        self.t_low_s = base_rtt_s + t_low_extra_s
        self.t_high_s = base_rtt_s + t_high_extra_s
        self._prev_rtt_s = base_rtt_s
        self._rtt_diff_s = 0.0
        self._hai_counter = 0

    # ------------------------------------------------------------------ #
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Gradient-based rate update from one RTT sample."""
        self.feedback_count += 1
        rtt = signal.rtt_s
        new_diff = rtt - self._prev_rtt_s
        self._prev_rtt_s = rtt
        self._rtt_diff_s = (
            self.ewma_alpha * self._rtt_diff_s + (1 - self.ewma_alpha) * new_diff
        )
        min_rtt = max(self.base_rtt_s, 1e-6)
        gradient = self._rtt_diff_s / min_rtt

        if rtt < self.t_low_s:
            self._hai_counter += 1
            step = self.addstep_bps * (5 if self._hai_counter >= 5 else 1)
            self.rate_bps += step
        elif rtt > self.t_high_s:
            self._hai_counter = 0
            self.rate_bps *= 1 - self.beta * (1 - self.t_high_s / rtt)
        elif gradient <= 0:
            self._hai_counter += 1
            step = self.addstep_bps * (5 if self._hai_counter >= 5 else 1)
            self.rate_bps += step
        else:
            self._hai_counter = 0
            self.rate_bps *= 1 - self.beta * min(1.0, gradient)
        self._clamp()

    def on_interval(self, dt: float, now: float) -> None:
        """TIMELY is ACK-clocked; nothing to do between feedback."""

    # ------------------------------------------------------------------ #
    # FlowTable slot batches: in-place column kernels, lane-for-lane
    # identical to on_feedback / on_interval above.
    # ------------------------------------------------------------------ #
    @classmethod
    def feedback_batch_slots(
        cls, table, slots, generated_s, ecn, util, rtt, qd, now
    ) -> None:
        """In-place :meth:`on_feedback` over FlowTable rows ``slots``."""
        if not len(slots):
            return
        block = table.cc_block(cls)
        table.feedback_count[slots] += 1

        # no boundary cast: feedback arrays arrive float64 (dtype-checked)
        where = table.backend.masked_where
        new_diff = rtt - block.prev_rtt[slots]
        block.prev_rtt[slots] = rtt
        ewma = block.p_ewma[slots]
        diff = ewma * block.rtt_diff[slots] + (1 - ewma) * new_diff
        block.rtt_diff[slots] = diff
        min_rtt = np.maximum(block.p_brtt[slots], 1e-6)
        gradient = diff / min_rtt

        # the four exclusive scalar branches as lane masks
        low = rtt < block.p_tlow[slots]
        t_high = block.p_thigh[slots]
        high = ~low & (rtt > t_high)
        mid = ~low & ~high
        increase = low | (mid & (gradient <= 0))
        grad_decrease = mid & (gradient > 0)

        hai = block.hai[slots]
        hai = where(increase, hai + 1, 0)
        beta = block.p_beta[slots]
        rate = table.cc_rate_bps[slots]
        step = block.p_add[slots] * where(hai >= 5, 5.0, 1.0)
        rate = where(increase, rate + step, rate)
        rate = where(high, rate * (1 - beta * (1 - t_high / rtt)), rate)
        rate = where(
            grad_decrease, rate * (1 - beta * np.minimum(1.0, gradient)), rate
        )
        rate = np.minimum(block.p_line[slots], np.maximum(block.p_floor[slots], rate))

        block.hai[slots] = hai
        table.cc_rate_bps[slots] = rate

    @classmethod
    def advance_batch_slots(cls, table, slots, dt: float, now: float) -> None:
        """TIMELY is ACK-clocked; the periodic kernel is a no-op."""
