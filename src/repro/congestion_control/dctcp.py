"""DCTCP congestion-control model (Alizadeh et al., SIGCOMM 2010).

DCTCP keeps an EWMA ``alpha`` of the fraction of ECN-marked packets per RTT
and reduces its window by ``alpha / 2`` once per RTT when marks were seen,
otherwise it grows by one segment per RTT.  We express the window behaviour
directly on the sending rate (rate = window / RTT), which is equivalent in
the fluid model.
"""

from __future__ import annotations

import numpy as np

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, cc_param, cc_state, register_cc

__all__ = ["DCTCP"]


@register_cc
class DCTCP(CongestionControl):
    """Rate-based DCTCP model driven by the delayed ECN fraction.

    Algorithm state (``alpha``, the per-RTT ECN accumulator and sample
    count, the window timer) and the static parameters are block-resident
    while bound to a :class:`~repro.simulator.flow_table.FlowTable`; the
    slot-batch kernels below run the exact scalar arithmetic as in-place
    masked column operations.
    """

    name = "dctcp"

    cc_columns = {
        "alpha": cc_state("alpha"),
        "ecn_acc": cc_state("_ecn_accumulator"),
        "ecn_n": cc_state("_ecn_samples", dtype="i8", py=int),
        "t_win": cc_state("_time_since_window_update"),
        "p_g": cc_param("g"),
        "p_mss": cc_param("mss_bytes"),
        "p_rtt": cc_param("base_rtt_s"),
        "p_line": cc_param("line_rate_bps"),
        "p_floor": cc_param("min_rate_bps"),
    }

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        g: float = 1 / 16,
        mss_bytes: int = 1500,
    ) -> None:
        """Create a DCTCP instance.

        Args:
            g: alpha EWMA gain.
            mss_bytes: segment size used for the per-RTT additive increase.
        """
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.g = g
        self.mss_bytes = mss_bytes
        self.alpha = 0.0
        self._ecn_accumulator = 0.0
        self._ecn_samples = 0
        self._time_since_window_update = 0.0

    # ------------------------------------------------------------------ #
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Accumulate the marked fraction; the window updates once per RTT."""
        self.feedback_count += 1
        self._ecn_accumulator += signal.ecn_fraction
        self._ecn_samples += 1

    def on_interval(self, dt: float, now: float) -> None:
        """Once per RTT: update alpha and apply the window change."""
        self._time_since_window_update += dt
        rtt = max(self.base_rtt_s, 1e-6)
        if self._time_since_window_update < rtt:
            return
        self._time_since_window_update = 0.0

        marked_fraction = (
            self._ecn_accumulator / self._ecn_samples if self._ecn_samples else 0.0
        )
        self._ecn_accumulator = 0.0
        self._ecn_samples = 0

        self.alpha = (1 - self.g) * self.alpha + self.g * marked_fraction
        if marked_fraction > 0:
            self.rate_bps *= 1 - self.alpha / 2.0
        else:
            # one segment per RTT, expressed as a rate increment
            self.rate_bps += self.mss_bytes * 8.0 / rtt
        self._clamp()

    # ------------------------------------------------------------------ #
    # FlowTable slot batches: in-place column kernels, lane-for-lane
    # identical to on_feedback / on_interval above.
    # ------------------------------------------------------------------ #
    @classmethod
    def feedback_batch_slots(
        cls, table, slots, generated_s, ecn, util, rtt, qd, now
    ) -> None:
        """In-place :meth:`on_feedback` over FlowTable rows ``slots``."""
        if not len(slots):
            return
        block = table.cc_block(cls)
        table.feedback_count[slots] += 1
        # no boundary cast: feedback arrays arrive float64 (dtype-checked)
        block.ecn_acc[slots] += ecn
        block.ecn_n[slots] += 1

    @classmethod
    def advance_batch_slots(cls, table, slots, dt: float, now: float) -> None:
        """In-place :meth:`on_interval` over FlowTable rows ``slots``."""
        if not len(slots):
            return
        block = table.cc_block(cls)
        bk = table.backend
        where = bk.masked_where
        t_win = block.t_win[slots] + dt
        rtt = np.maximum(block.p_rtt[slots], 1e-6)
        due = t_win >= rtt
        if not due.any():
            block.t_win[slots] = t_win
            return

        acc = block.ecn_acc[slots]
        n = block.ecn_n[slots]
        marked = bk.masked_divide(acc, n, n > 0)

        g = block.p_g[slots]
        alpha = block.alpha[slots]
        alpha = where(due, (1 - g) * alpha + g * marked, alpha)

        rate = table.cc_rate_bps[slots]
        cut = due & (marked > 0)
        grow = due & ~(marked > 0)
        rate = where(cut, rate * (1 - alpha / 2.0), rate)
        rate = where(grow, rate + block.p_mss[slots] * 8.0 / rtt, rate)
        rate = where(
            due,
            np.minimum(block.p_line[slots], np.maximum(block.p_floor[slots], rate)),
            rate,
        )

        block.t_win[slots] = where(due, 0.0, t_win)
        block.ecn_acc[slots] = where(due, 0.0, acc)
        block.ecn_n[slots] = where(due, 0, n)
        block.alpha[slots] = alpha
        table.cc_rate_bps[slots] = rate
