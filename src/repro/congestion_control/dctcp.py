"""DCTCP congestion-control model (Alizadeh et al., SIGCOMM 2010).

DCTCP keeps an EWMA ``alpha`` of the fraction of ECN-marked packets per RTT
and reduces its window by ``alpha / 2`` once per RTT when marks were seen,
otherwise it grows by one segment per RTT.  We express the window behaviour
directly on the sending rate (rate = window / RTT), which is equivalent in
the fluid model.
"""

from __future__ import annotations

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, register_cc

__all__ = ["DCTCP"]


@register_cc
class DCTCP(CongestionControl):
    """Rate-based DCTCP model driven by the delayed ECN fraction."""

    name = "dctcp"

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        g: float = 1 / 16,
        mss_bytes: int = 1500,
    ) -> None:
        """Create a DCTCP instance.

        Args:
            g: alpha EWMA gain.
            mss_bytes: segment size used for the per-RTT additive increase.
        """
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.g = g
        self.mss_bytes = mss_bytes
        self.alpha = 0.0
        self._ecn_accumulator = 0.0
        self._ecn_samples = 0
        self._time_since_window_update = 0.0

    # ------------------------------------------------------------------ #
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Accumulate the marked fraction; the window updates once per RTT."""
        self.feedback_count += 1
        self._ecn_accumulator += signal.ecn_fraction
        self._ecn_samples += 1

    def on_interval(self, dt: float, now: float) -> None:
        """Once per RTT: update alpha and apply the window change."""
        self._time_since_window_update += dt
        rtt = max(self.base_rtt_s, 1e-6)
        if self._time_since_window_update < rtt:
            return
        self._time_since_window_update = 0.0

        marked_fraction = (
            self._ecn_accumulator / self._ecn_samples if self._ecn_samples else 0.0
        )
        self._ecn_accumulator = 0.0
        self._ecn_samples = 0

        self.alpha = (1 - self.g) * self.alpha + self.g * marked_fraction
        if marked_fraction > 0:
            self.rate_bps *= 1 - self.alpha / 2.0
        else:
            # one segment per RTT, expressed as a rate increment
            self.rate_bps += self.mss_bytes * 8.0 / rtt
        self._clamp()
