"""Deterministic per-flow congestion-control mixes.

Heterogeneous-CC fleets (e.g. a datacenter migrating from DCQCN to HPCC
tenant by tenant) assign a congestion-control algorithm *per flow*.  A
:class:`MixedCCFactory` draws that assignment deterministically from
``(seed, flow_id)``, so the same spec produces the same fleet on every core
(scalar, legacy-vectorized, SoA), in every process of a parallel sweep, and
regardless of arrival batching — the property the cross-core equivalence
suite relies on.

Build one from registry names and weights::

    from repro.congestion_control import make_mixed_cc_factory

    factory = make_mixed_cc_factory((("dcqcn", 0.8), ("hpcc", 0.2)), seed=7)
    cc = factory(100e9, 0.05, flow_id=42)   # same class for id 42, always

The fluid simulation detects the :attr:`MixedCCFactory.per_flow` marker and
passes each demand's ``flow_id``; plain single-class factories keep the
two-argument calling convention unchanged.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence, Tuple

from .base import CCFactory, CongestionControl, make_cc_factory

__all__ = ["MixedCCFactory", "make_mixed_cc_factory"]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a cheap, well-distributed 64-bit integer mix.

    Used instead of seeding a numpy Generator per flow — assignment runs
    once per arrival on the batched-arrival fast path, and constructing a
    ``default_rng`` costs ~25 µs against sub-µs for this mix.  Distinct
    constants from the routing layer's ``flow_hash`` keep CC assignment
    uncorrelated with path choice.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class MixedCCFactory:
    """A per-flow factory choosing among several CC factories by weight.

    Args:
        components: pairs of ``(cc, weight)`` where ``cc`` is a registry
            name (``"dcqcn"``) or an existing factory and ``weight`` is a
            positive share (normalised internally).
        seed: base seed of the per-flow assignment stream.
    """

    #: marks the factory as wanting the per-flow ``flow_id`` argument
    per_flow = True

    def __init__(
        self, components: Sequence[Tuple[object, float]], seed: int = 0
    ) -> None:
        components = tuple(components)
        if not components:
            raise ValueError("a CC mix needs at least one component")
        factories = []
        labels = []
        weights = []
        for cc, weight in components:
            weight = float(weight)
            if weight <= 0:
                raise ValueError(f"CC mix weights must be positive, got {weight}")
            if isinstance(cc, str):
                factories.append(make_cc_factory(cc))
                labels.append(cc)
            else:
                factories.append(cc)
                labels.append(getattr(cc, "name", type(cc).__name__))
            weights.append(weight)
        self._factories: Tuple[CCFactory, ...] = tuple(factories)
        #: component labels, aligned with the assignment indices
        self.labels: Tuple[str, ...] = tuple(labels)
        total = sum(weights)
        acc = 0.0
        self._cum = []
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self._seed = _mix64(int(seed) & _MASK64)

    def assign(self, flow_id: int) -> int:
        """Component index assigned to ``flow_id`` (deterministic)."""
        u = _mix64(self._seed ^ _mix64(int(flow_id) & _MASK64)) / 2.0**64
        return min(bisect_right(self._cum, u), len(self._cum) - 1)

    def __call__(
        self, line_rate_bps: float, base_rtt_s: float, flow_id: int = 0
    ) -> CongestionControl:
        """Build the controller assigned to ``flow_id``."""
        return self._factories[self.assign(flow_id)](line_rate_bps, base_rtt_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shares = [b - a for a, b in zip([0.0] + self._cum[:-1], self._cum)]
        parts = ", ".join(
            f"{label}:{share:.0%}" for label, share in zip(self.labels, shares)
        )
        return f"MixedCCFactory({parts}, seed={self._seed})"


def make_mixed_cc_factory(mix, seed: int = 0) -> MixedCCFactory:
    """Build a :class:`MixedCCFactory` from a mix description.

    Args:
        mix: a mapping ``{name: weight}`` or a sequence of ``(name, weight)``
            pairs; names may also be ready-made factories.
        seed: base seed of the per-flow assignment stream.
    """
    if hasattr(mix, "items"):
        mix = tuple(mix.items())
    return MixedCCFactory(mix, seed=seed)
