"""RDMA congestion-control models (DCQCN, HPCC, TIMELY, DCTCP).

LCMP is orthogonal to end-host congestion control; these rate-based models
let the evaluation exercise every CC the paper tests underneath every
routing algorithm.  Use :func:`make_cc_factory` to obtain the per-flow
factory the simulator expects.
"""

from .base import CCFactory, CongestionControl, available_ccs, make_cc_factory, register_cc
from .dcqcn import DCQCN
from .dctcp import DCTCP
from .hpcc import HPCC
from .ideal import FixedRate, IdealCC
from .timely import Timely

__all__ = [
    "CongestionControl",
    "CCFactory",
    "available_ccs",
    "make_cc_factory",
    "register_cc",
    "DCQCN",
    "HPCC",
    "Timely",
    "DCTCP",
    "FixedRate",
    "IdealCC",
]
