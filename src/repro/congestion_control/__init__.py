"""RDMA congestion-control models (DCQCN, HPCC, TIMELY, DCTCP).

LCMP is orthogonal to end-host congestion control; these rate-based models
let the evaluation exercise every CC the paper tests underneath every
routing algorithm.  Use :func:`make_cc_factory` to obtain the per-flow
factory the simulator expects, or :func:`make_mixed_cc_factory` for a
heterogeneous fleet (per-flow algorithm assignment, deterministic in the
seed).  Every model keeps its state in declarative FlowTable column blocks
(:attr:`CongestionControl.cc_columns`) with in-place slot kernels — see
DESIGN.md, "Congestion control (arrays)".
"""

from .base import (
    CCColumn,
    CCFactory,
    CongestionControl,
    available_ccs,
    cc_param,
    cc_state,
    make_cc_factory,
    register_cc,
)
from .dcqcn import DCQCN
from .dctcp import DCTCP
from .hpcc import HPCC
from .ideal import FixedRate, IdealCC
from .mix import MixedCCFactory, make_mixed_cc_factory
from .timely import Timely

__all__ = [
    "CongestionControl",
    "CCColumn",
    "cc_state",
    "cc_param",
    "CCFactory",
    "available_ccs",
    "make_cc_factory",
    "MixedCCFactory",
    "make_mixed_cc_factory",
    "register_cc",
    "DCQCN",
    "HPCC",
    "Timely",
    "DCTCP",
    "FixedRate",
    "IdealCC",
]
