"""Congestion-control interface.

LCMP is a routing scheme and is explicitly orthogonal to end-host congestion
control (paper §5, §6.3.2); the evaluation exercises DCQCN, HPCC, TIMELY and
DCTCP underneath every routing algorithm.  Each controller here is a
rate-based model of the corresponding algorithm: it exposes a sending rate,
reacts to the delayed :class:`~repro.simulator.flow.FeedbackSignal` the fluid
simulation delivers one path-RTT after congestion occurred, and performs its
periodic rate-recovery behaviour in :meth:`CongestionControl.on_interval`.

Feedback plumbing with the vectorized simulator core: the fluid simulation
builds every step's :class:`~repro.simulator.flow.FeedbackSignal` from the
flow×link incidence arrays (:mod:`repro.simulator.incidence`) and still
delivers them per flow — controllers are stateful per-flow objects — but
advances all controllers of one class through
:meth:`CongestionControl.advance_batch`.  Controllers are mutually
independent, so the base implementation just loops :meth:`on_interval`;
algorithms whose periodic behaviour runs many sub-interval timer iterations
per step (DCQCN) override it with an array implementation that performs the
exact same per-flow float operations.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Sequence, Type

from ..simulator.flow import FeedbackSignal

__all__ = ["CongestionControl", "CCFactory", "register_cc", "make_cc_factory", "available_ccs"]


class CongestionControl(abc.ABC):
    """Base class for rate-based congestion-control models.

    Subclasses must set :attr:`name` and implement :meth:`on_feedback` and
    :meth:`on_interval`; they adjust :attr:`rate_bps` in place.
    """

    #: registry name, e.g. ``"dcqcn"``
    name: str = "base"

    #: column name -> numpy dtype string of the per-class state this
    #: algorithm keeps in the simulation's FlowTable block (see
    #: :mod:`repro.simulator.flow_table`); empty = state stays on the
    #: instance and the slot-batch hooks fall back to object dispatch
    table_block_spec: Dict[str, str] = {}

    def __init__(self, line_rate_bps: float, base_rtt_s: float, min_rate_bps: float = 1e6):
        """Create a controller.

        Args:
            line_rate_bps: the sender's line rate (initial sending rate).
            base_rtt_s: propagation-only RTT of the flow's path.
            min_rate_bps: floor below which the rate never drops.
        """
        if line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        if base_rtt_s < 0:
            raise ValueError("base RTT must be non-negative")
        self.line_rate_bps = float(line_rate_bps)
        self.base_rtt_s = float(base_rtt_s)
        self.min_rate_bps = float(min_rate_bps)
        #: owning FlowTable / row slot while bound (SoA core), else None/-1
        self._table = None
        self._slot = -1
        self._rate_bps = float(line_rate_bps)
        self._fb_count = 0

    # ------------------------------------------------------------------ #
    # FlowTable binding (see repro.simulator.flow_table)
    # ------------------------------------------------------------------ #
    @property
    def rate_bps(self) -> float:
        """Current sending rate; table-resident while bound to a FlowTable."""
        t = self._table
        if t is None:
            return self._rate_bps
        return t.cc_rate_bps[self._slot]

    @rate_bps.setter
    def rate_bps(self, value: float) -> None:
        t = self._table
        if t is None:
            self._rate_bps = value
        else:
            t.cc_rate_bps[self._slot] = value

    @property
    def feedback_count(self) -> int:
        """Count of feedback signals processed (useful in tests)."""
        t = self._table
        if t is None:
            return self._fb_count
        return int(t.feedback_count[self._slot])

    @feedback_count.setter
    def feedback_count(self, value: int) -> None:
        t = self._table
        if t is None:
            self._fb_count = value
        else:
            t.feedback_count[self._slot] = value

    def bind_table(self, table, slot: int) -> None:
        """Move this controller's mutable state into ``table`` row ``slot``.

        Subclasses with a :attr:`table_block_spec` override
        :meth:`_push_state` / :meth:`_pull_state` to move their block
        columns; the base class moves the sending rate and feedback count.
        """
        table.cc_rate_bps[slot] = self._rate_bps
        table.feedback_count[slot] = self._fb_count
        self._push_state(table, slot)
        self._table = table
        self._slot = slot

    def unbind_table(self) -> None:
        """Copy the row's final values back and detach from the table."""
        table = self._table
        if table is None:
            return
        slot = self._slot
        self._table = None
        self._slot = -1
        self._rate_bps = float(table.cc_rate_bps[slot])
        self._fb_count = int(table.feedback_count[slot])
        self._pull_state(table, slot)

    def _push_state(self, table, slot: int) -> None:
        """Write algorithm state into the class's block columns (hook)."""

    def _pull_state(self, table, slot: int) -> None:
        """Read algorithm state back from the block columns (hook)."""

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """React to one delayed congestion-feedback signal."""

    @abc.abstractmethod
    def on_interval(self, dt: float, now: float) -> None:
        """Periodic behaviour (rate recovery / increase), every update step."""

    @classmethod
    def advance_batch(
        cls, controllers: Sequence["CongestionControl"], dt: float, now: float
    ) -> None:
        """Advance many controllers of this class by one update step.

        Controllers never share state, so this is semantically identical
        to calling :meth:`on_interval` on each; subclasses may override it
        with an array implementation, which must keep the per-controller
        arithmetic bit-for-bit identical (the vectorized simulator core
        relies on that — see DESIGN.md, "Vectorized core").
        """
        for cc in controllers:
            cc.on_interval(dt, now)

    @classmethod
    def feedback_batch(
        cls,
        controllers: Sequence["CongestionControl"],
        generated_s: float,
        ecn,
        util,
        rtt,
        qd,
        now: float,
    ) -> None:
        """Deliver one feedback signal to each of many controllers.

        The signal fields arrive as parallel sequences (element ``i`` goes
        to ``controllers[i]``) because the vectorized simulator core keeps
        in-flight feedback as arrays; the base implementation materialises
        one :class:`FeedbackSignal` per controller and loops
        :meth:`on_feedback`.  Same contract as :meth:`advance_batch`:
        overrides must keep the per-controller arithmetic bit-for-bit
        identical to :meth:`on_feedback`.
        """
        for i, cc in enumerate(controllers):
            cc.on_feedback(
                FeedbackSignal(generated_s, ecn[i], util[i], rtt[i], qd[i]), now
            )

    # ------------------------------------------------------------------ #
    # FlowTable slot batches (the SoA core's dispatch points)
    # ------------------------------------------------------------------ #
    @classmethod
    def advance_batch_slots(cls, table, slots, dt: float, now: float) -> None:
        """Advance the controllers occupying ``slots`` of ``table``.

        The base implementation gathers the controller objects and defers
        to :meth:`advance_batch` (so existing object-level overrides keep
        working); classes that keep their state in a table block override
        this with in-place masked column operations, which must stay
        bit-for-bit identical to :meth:`on_interval` per row.
        """
        controllers = [table.flow_at(s).cc for s in slots.tolist()]
        cls.advance_batch(controllers, dt, now)

    @classmethod
    def feedback_batch_slots(
        cls, table, slots, generated_s: float, ecn, util, rtt, qd, now: float
    ) -> None:
        """Deliver one feedback signal to each controller in ``slots``.

        Same contract as :meth:`advance_batch_slots`: the base gathers
        objects and defers to :meth:`feedback_batch`; block-resident
        classes override with in-place column operations.
        """
        controllers = [table.flow_at(s).cc for s in slots.tolist()]
        cls.feedback_batch(controllers, generated_s, ecn, util, rtt, qd, now)

    # ------------------------------------------------------------------ #
    def _clamp(self) -> None:
        """Keep the rate within [min_rate, line_rate]."""
        self.rate_bps = min(self.line_rate_bps, max(self.min_rate_bps, self.rate_bps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate={self.rate_bps / 1e9:.2f} Gbps)"


#: a congestion-control factory: (line_rate_bps, base_rtt_s) -> controller
CCFactory = Callable[[float, float], CongestionControl]

_REGISTRY: Dict[str, Type[CongestionControl]] = {}


def register_cc(cls: Type[CongestionControl]) -> Type[CongestionControl]:
    """Class decorator registering a congestion-control implementation."""
    if not cls.name or cls.name == "base":
        raise ValueError("congestion control classes must define a unique name")
    _REGISTRY[cls.name] = cls
    return cls


def available_ccs() -> list:
    """Names of all registered congestion-control algorithms."""
    return sorted(_REGISTRY)


def make_cc_factory(name: str, **params) -> CCFactory:
    """Build a factory for the named congestion control.

    Args:
        name: registry name (``"dcqcn"``, ``"hpcc"``, ``"timely"``,
            ``"dctcp"``, ``"ideal"``).
        **params: extra keyword arguments forwarded to the constructor.

    Raises:
        KeyError: for unknown names.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown congestion control {name!r}; available: {available_ccs()}"
        ) from None

    def factory(line_rate_bps: float, base_rtt_s: float) -> CongestionControl:
        return cls(line_rate_bps, base_rtt_s, **params)

    return factory
