"""Congestion-control interface.

LCMP is a routing scheme and is explicitly orthogonal to end-host congestion
control (paper §5, §6.3.2); the evaluation exercises DCQCN, HPCC, TIMELY and
DCTCP underneath every routing algorithm.  Each controller here is a
rate-based model of the corresponding algorithm: it exposes a sending rate,
reacts to the delayed :class:`~repro.simulator.flow.FeedbackSignal` the fluid
simulation delivers one path-RTT after congestion occurred, and performs its
periodic rate-recovery behaviour in :meth:`CongestionControl.on_interval`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Type

from ..simulator.flow import FeedbackSignal

__all__ = ["CongestionControl", "CCFactory", "register_cc", "make_cc_factory", "available_ccs"]


class CongestionControl(abc.ABC):
    """Base class for rate-based congestion-control models.

    Subclasses must set :attr:`name` and implement :meth:`on_feedback` and
    :meth:`on_interval`; they adjust :attr:`rate_bps` in place.
    """

    #: registry name, e.g. ``"dcqcn"``
    name: str = "base"

    def __init__(self, line_rate_bps: float, base_rtt_s: float, min_rate_bps: float = 1e6):
        """Create a controller.

        Args:
            line_rate_bps: the sender's line rate (initial sending rate).
            base_rtt_s: propagation-only RTT of the flow's path.
            min_rate_bps: floor below which the rate never drops.
        """
        if line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        if base_rtt_s < 0:
            raise ValueError("base RTT must be non-negative")
        self.line_rate_bps = float(line_rate_bps)
        self.base_rtt_s = float(base_rtt_s)
        self.min_rate_bps = float(min_rate_bps)
        self.rate_bps = float(line_rate_bps)
        #: count of feedback signals processed (useful in tests)
        self.feedback_count = 0

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """React to one delayed congestion-feedback signal."""

    @abc.abstractmethod
    def on_interval(self, dt: float, now: float) -> None:
        """Periodic behaviour (rate recovery / increase), every update step."""

    # ------------------------------------------------------------------ #
    def _clamp(self) -> None:
        """Keep the rate within [min_rate, line_rate]."""
        self.rate_bps = min(self.line_rate_bps, max(self.min_rate_bps, self.rate_bps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate={self.rate_bps / 1e9:.2f} Gbps)"


#: a congestion-control factory: (line_rate_bps, base_rtt_s) -> controller
CCFactory = Callable[[float, float], CongestionControl]

_REGISTRY: Dict[str, Type[CongestionControl]] = {}


def register_cc(cls: Type[CongestionControl]) -> Type[CongestionControl]:
    """Class decorator registering a congestion-control implementation."""
    if not cls.name or cls.name == "base":
        raise ValueError("congestion control classes must define a unique name")
    _REGISTRY[cls.name] = cls
    return cls


def available_ccs() -> list:
    """Names of all registered congestion-control algorithms."""
    return sorted(_REGISTRY)


def make_cc_factory(name: str, **params) -> CCFactory:
    """Build a factory for the named congestion control.

    Args:
        name: registry name (``"dcqcn"``, ``"hpcc"``, ``"timely"``,
            ``"dctcp"``, ``"ideal"``).
        **params: extra keyword arguments forwarded to the constructor.

    Raises:
        KeyError: for unknown names.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown congestion control {name!r}; available: {available_ccs()}"
        ) from None

    def factory(line_rate_bps: float, base_rtt_s: float) -> CongestionControl:
        return cls(line_rate_bps, base_rtt_s, **params)

    return factory
