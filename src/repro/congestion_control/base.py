"""Congestion-control interface.

LCMP is a routing scheme and is explicitly orthogonal to end-host congestion
control (paper §5, §6.3.2); the evaluation exercises DCQCN, HPCC, TIMELY and
DCTCP underneath every routing algorithm.  Each controller here is a
rate-based model of the corresponding algorithm: it exposes a sending rate,
reacts to the delayed :class:`~repro.simulator.flow.FeedbackSignal` the fluid
simulation delivers one path-RTT after congestion occurred, and performs its
periodic rate-recovery behaviour in :meth:`CongestionControl.on_interval`.

Array residency (the SoA simulator core): a congestion-control class
declares its per-flow state and its static parameters as a **declarative
column-block spec** (:attr:`CongestionControl.cc_columns`, built from
:func:`cc_state` / :func:`cc_param` entries).  From that spec the base class
derives everything the simulation's
:class:`~repro.simulator.flow_table.FlowTable` needs:

* the block layout (``table_block_spec``: column name -> numpy dtype),
* bound-view properties — while an instance is bound to a table row, each
  spec'd state attribute reads and writes its block column, so scalar
  methods called on bound instances (the repeated-feedback slow path,
  tests) observe exactly the table-resident state,
* :meth:`CongestionControl._push_state` / ``_pull_state`` — state moves
  into the columns at bind time and back into the instance at release.

Each class then supplies in-place :meth:`advance_batch_slots` /
:meth:`feedback_batch_slots` kernels operating on its block columns; the
fluid simulation dispatches the whole fleet through them, grouped per class,
so no per-flow Python loop survives on the hot step.  Kernels must stay
bit-for-bit identical to the scalar :meth:`on_interval` / :meth:`on_feedback`
per row (the equivalence-suite contract; see DESIGN.md, "Congestion control
(arrays)").  The object-level :meth:`advance_batch` / :meth:`feedback_batch`
remain the dispatch points of the object-resident legacy core.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Type

from ..simulator.flow import FeedbackSignal

__all__ = [
    "CCColumn",
    "cc_state",
    "cc_param",
    "CongestionControl",
    "CCFactory",
    "register_cc",
    "make_cc_factory",
    "available_ccs",
]


@dataclass(frozen=True)
class CCColumn:
    """One column of a congestion-control class's FlowTable block.

    Attributes:
        attr: instance attribute the column mirrors.
        dtype: numpy dtype string of the column.
        kind: ``"state"`` (mutable per-flow algorithm state, moved back into
            the instance at release) or ``"param"`` (static per-flow
            parameter, replicated into the row at bind so kernels never
            gather objects; never pulled back).
        py: Python type a bound read converts to (``float``/``int``/``bool``).
    """

    attr: str
    dtype: str = "f8"
    kind: str = "state"
    py: type = float


def cc_state(attr: str, dtype: str = "f8", py: type = float) -> CCColumn:
    """Declare a mutable state column mirroring instance attribute ``attr``."""
    return CCColumn(attr, dtype, "state", py)


def cc_param(attr: str, dtype: str = "f8") -> CCColumn:
    """Declare a static parameter column filled from attribute ``attr``."""
    return CCColumn(attr, dtype, "param", float)


def _install_state_property(cls: type, column: str, col: CCColumn) -> None:
    """Give ``cls`` a bound-view property for one spec'd state attribute.

    Unbound instances keep the value in a shadow attribute (plain Python
    state, the scalar reference path); bound instances read and write the
    row of their class's column block, converting reads back through
    ``col.py`` so scalar arithmetic on bound state stays plain-float.
    """
    shadow = "_cc_" + column
    py = col.py

    def getter(self):
        t = self._table
        if t is None:
            return getattr(self, shadow)
        return py(getattr(t.cc_block(type(self)), column)[self._slot])

    def setter(self, value):
        t = self._table
        if t is None:
            setattr(self, shadow, value)
        else:
            getattr(t.cc_block(type(self)), column)[self._slot] = value

    setattr(
        cls,
        col.attr,
        property(getter, setter, doc=f"Spec'd CC state (block column {column!r})."),
    )


class CongestionControl(abc.ABC):
    """Base class for rate-based congestion-control models.

    Subclasses must set :attr:`name` and implement :meth:`on_feedback` and
    :meth:`on_interval`; they adjust :attr:`rate_bps` in place.
    """

    #: registry name, e.g. ``"dcqcn"``
    name: str = "base"

    #: declarative block spec: column name -> :class:`CCColumn` (built with
    #: :func:`cc_state` / :func:`cc_param`).  Declaring it in a subclass
    #: derives :attr:`table_block_spec`, the bound-view properties and the
    #: generic push/pull; empty = the class keeps no block and the
    #: slot-batch hooks fall back to object dispatch
    cc_columns: Dict[str, CCColumn] = {}

    #: column name -> numpy dtype string of the per-class state this
    #: algorithm keeps in the simulation's FlowTable block (see
    #: :mod:`repro.simulator.flow_table`); derived from :attr:`cc_columns`
    table_block_spec: Dict[str, str] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        columns = cls.__dict__.get("cc_columns")
        if not columns:
            return
        cls.table_block_spec = {name: col.dtype for name, col in columns.items()}
        for name, col in columns.items():
            if col.kind == "state":
                _install_state_property(cls, name, col)

    def __init__(self, line_rate_bps: float, base_rtt_s: float, min_rate_bps: float = 1e6):
        """Create a controller.

        Args:
            line_rate_bps: the sender's line rate (initial sending rate).
            base_rtt_s: propagation-only RTT of the flow's path.
            min_rate_bps: floor below which the rate never drops.
        """
        if line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        if base_rtt_s < 0:
            raise ValueError("base RTT must be non-negative")
        self.line_rate_bps = float(line_rate_bps)
        self.base_rtt_s = float(base_rtt_s)
        self.min_rate_bps = float(min_rate_bps)
        #: owning FlowTable / row slot while bound (SoA core), else None/-1
        self._table = None
        self._slot = -1
        self._rate_bps = float(line_rate_bps)
        self._fb_count = 0

    # ------------------------------------------------------------------ #
    # FlowTable binding (see repro.simulator.flow_table)
    # ------------------------------------------------------------------ #
    @property
    def rate_bps(self) -> float:
        """Current sending rate; table-resident while bound to a FlowTable."""
        t = self._table
        if t is None:
            return self._rate_bps
        return t.cc_rate_bps[self._slot]

    @rate_bps.setter
    def rate_bps(self, value: float) -> None:
        t = self._table
        if t is None:
            self._rate_bps = value
        else:
            t.cc_rate_bps[self._slot] = value

    @property
    def feedback_count(self) -> int:
        """Count of feedback signals processed (useful in tests)."""
        t = self._table
        if t is None:
            return self._fb_count
        return int(t.feedback_count[self._slot])

    @feedback_count.setter
    def feedback_count(self, value: int) -> None:
        t = self._table
        if t is None:
            self._fb_count = value
        else:
            t.feedback_count[self._slot] = value

    def bind_table(self, table, slot: int) -> None:
        """Move this controller's mutable state into ``table`` row ``slot``.

        The base class moves the sending rate and feedback count; the
        spec-derived :meth:`_push_state` / :meth:`_pull_state` move the
        class's :attr:`cc_columns` block.
        """
        table.cc_rate_bps[slot] = self._rate_bps
        table.feedback_count[slot] = self._fb_count
        self._push_state(table, slot)
        self._table = table
        self._slot = slot

    def unbind_table(self) -> None:
        """Copy the row's final values back and detach from the table."""
        table = self._table
        if table is None:
            return
        slot = self._slot
        self._table = None
        self._slot = -1
        self._rate_bps = float(table.cc_rate_bps[slot])
        self._fb_count = int(table.feedback_count[slot])
        self._pull_state(table, slot)

    def _push_state(self, table, slot: int) -> None:
        """Write spec'd state and parameters into the class's block columns.

        Derived from :attr:`cc_columns`; runs before the instance is marked
        bound, so state attributes still read their unbound shadow values.
        """
        columns = type(self).cc_columns
        if not columns:
            return
        block = table.cc_block(type(self))
        for name, col in columns.items():
            getattr(block, name)[slot] = getattr(self, col.attr)

    def _pull_state(self, table, slot: int) -> None:
        """Read spec'd state back from the block columns (params stay).

        Runs after the instance is marked unbound, so assigning the state
        attributes lands in the shadow storage.
        """
        columns = type(self).cc_columns
        if not columns:
            return
        block = table.cc_block(type(self))
        for name, col in columns.items():
            if col.kind == "state":
                setattr(self, col.attr, col.py(getattr(block, name)[slot]))

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """React to one delayed congestion-feedback signal."""

    @abc.abstractmethod
    def on_interval(self, dt: float, now: float) -> None:
        """Periodic behaviour (rate recovery / increase), every update step."""

    @classmethod
    def advance_batch(
        cls, controllers: Sequence["CongestionControl"], dt: float, now: float
    ) -> None:
        """Advance many controllers of this class by one update step.

        Controllers never share state, so this is semantically identical
        to calling :meth:`on_interval` on each; subclasses may override it
        with an array implementation, which must keep the per-controller
        arithmetic bit-for-bit identical (the vectorized simulator core
        relies on that — see DESIGN.md, "Vectorized core").
        """
        for cc in controllers:
            cc.on_interval(dt, now)

    @classmethod
    def feedback_batch(
        cls,
        controllers: Sequence["CongestionControl"],
        generated_s: float,
        ecn,
        util,
        rtt,
        qd,
        now: float,
    ) -> None:
        """Deliver one feedback signal to each of many controllers.

        The signal fields arrive as parallel sequences (element ``i`` goes
        to ``controllers[i]``) because the vectorized simulator core keeps
        in-flight feedback as arrays; the base implementation materialises
        one :class:`FeedbackSignal` per controller and loops
        :meth:`on_feedback`.  Same contract as :meth:`advance_batch`:
        overrides must keep the per-controller arithmetic bit-for-bit
        identical to :meth:`on_feedback`.
        """
        for i, cc in enumerate(controllers):
            cc.on_feedback(
                FeedbackSignal(generated_s, ecn[i], util[i], rtt[i], qd[i]), now
            )

    # ------------------------------------------------------------------ #
    # FlowTable slot batches (the SoA core's dispatch points)
    # ------------------------------------------------------------------ #
    @classmethod
    def advance_batch_slots(cls, table, slots, dt: float, now: float) -> None:
        """Advance the controllers occupying ``slots`` of ``table``.

        The base implementation gathers the controller objects and defers
        to :meth:`advance_batch` (so existing object-level overrides keep
        working); classes that keep their state in a table block override
        this with in-place masked column operations, which must stay
        bit-for-bit identical to :meth:`on_interval` per row.
        """
        controllers = [table.flow_at(s).cc for s in slots.tolist()]
        cls.advance_batch(controllers, dt, now)

    @classmethod
    def feedback_batch_slots(
        cls, table, slots, generated_s: float, ecn, util, rtt, qd, now: float
    ) -> None:
        """Deliver one feedback signal to each controller in ``slots``.

        Same contract as :meth:`advance_batch_slots`: the base gathers
        objects and defers to :meth:`feedback_batch`; block-resident
        classes override with in-place column operations.
        """
        controllers = [table.flow_at(s).cc for s in slots.tolist()]
        cls.feedback_batch(controllers, generated_s, ecn, util, rtt, qd, now)

    # ------------------------------------------------------------------ #
    def _clamp(self) -> None:
        """Keep the rate within [min_rate, line_rate]."""
        self.rate_bps = min(self.line_rate_bps, max(self.min_rate_bps, self.rate_bps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate={self.rate_bps / 1e9:.2f} Gbps)"


#: a congestion-control factory: (line_rate_bps, base_rtt_s) -> controller
CCFactory = Callable[[float, float], CongestionControl]

_REGISTRY: Dict[str, Type[CongestionControl]] = {}


def register_cc(cls: Type[CongestionControl]) -> Type[CongestionControl]:
    """Class decorator registering a congestion-control implementation."""
    if not cls.name or cls.name == "base":
        raise ValueError("congestion control classes must define a unique name")
    _REGISTRY[cls.name] = cls
    return cls


def available_ccs() -> list:
    """Names of all registered congestion-control algorithms."""
    return sorted(_REGISTRY)


def make_cc_factory(name: str, **params) -> CCFactory:
    """Build a factory for the named congestion control.

    Args:
        name: registry name (``"dcqcn"``, ``"hpcc"``, ``"timely"``,
            ``"dctcp"``, ``"ideal"``).
        **params: extra keyword arguments forwarded to the constructor.

    Raises:
        KeyError: for unknown names.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown congestion control {name!r}; available: {available_ccs()}"
        ) from None

    def factory(line_rate_bps: float, base_rtt_s: float) -> CongestionControl:
        return cls(line_rate_bps, base_rtt_s, **params)

    return factory
