"""DCQCN congestion-control model (Zhu et al., SIGCOMM 2015).

DCQCN is the default RDMA congestion control in the paper's evaluation.  The
switch ECN-marks packets with a RED profile; the receiver reflects marks as
CNPs; the sender keeps an EWMA ``alpha`` of the marking level, cuts its rate
multiplicatively when CNPs arrive and recovers through fast-recovery /
additive-increase / hyper-increase stages.

This model keeps the rate-based core of the algorithm (alpha EWMA, cut by
``alpha/2``, staged recovery toward a target rate) and drives it from the
fluid simulation's delayed ECN-fraction feedback.
"""

from __future__ import annotations

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, register_cc

__all__ = ["DCQCN"]


@register_cc
class DCQCN(CongestionControl):
    """Rate-based DCQCN model."""

    name = "dcqcn"

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        g: float = 1 / 16,
        rate_ai_bps: float = 200e6,
        rate_hai_bps: float = 1e9,
        alpha_resume_interval_s: float = 55e-6,
        increase_timer_s: float = 0.3e-3,
        ecn_threshold: float = 0.01,
    ) -> None:
        """Create a DCQCN instance.

        Args:
            g: alpha EWMA gain.
            rate_ai_bps: additive-increase step.
            rate_hai_bps: hyper-increase step.
            alpha_resume_interval_s: cadence of alpha decay without CNPs.
            increase_timer_s: cadence of rate-increase events.
            ecn_threshold: ECN fraction above which feedback counts as a CNP.
        """
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.g = g
        self.rate_ai_bps = rate_ai_bps
        self.rate_hai_bps = rate_hai_bps
        self.alpha_resume_interval_s = alpha_resume_interval_s
        self.increase_timer_s = increase_timer_s
        self.ecn_threshold = ecn_threshold

        self.alpha = 1.0
        self.target_rate_bps = float(line_rate_bps)
        self._time_since_increase = 0.0
        self._time_since_alpha_update = 0.0
        self._increase_stage = 0
        self._congested_recently = False

    # ------------------------------------------------------------------ #
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Process one (delayed) feedback sample as a CNP indication."""
        self.feedback_count += 1
        congested = signal.ecn_fraction > self.ecn_threshold
        if congested:
            # alpha rises toward the observed marking level, rate is cut
            self.alpha = (1 - self.g) * self.alpha + self.g * min(1.0, signal.ecn_fraction * 4)
            self.target_rate_bps = self.rate_bps
            self.rate_bps *= 1 - self.alpha / 2.0
            self._increase_stage = 0
            self._congested_recently = True
            self._clamp()
        else:
            self._congested_recently = False

    def on_interval(self, dt: float, now: float) -> None:
        """Alpha decay and staged rate recovery."""
        self._time_since_alpha_update += dt
        while self._time_since_alpha_update >= self.alpha_resume_interval_s:
            self._time_since_alpha_update -= self.alpha_resume_interval_s
            self.alpha *= 1 - self.g

        self._time_since_increase += dt
        while self._time_since_increase >= self.increase_timer_s:
            self._time_since_increase -= self.increase_timer_s
            self._increase_once()

    # ------------------------------------------------------------------ #
    def _increase_once(self) -> None:
        """One recovery step: fast recovery, then AI, then hyper increase."""
        if self._increase_stage < 5:
            # fast recovery: move halfway back to the target rate
            self.rate_bps = (self.rate_bps + self.target_rate_bps) / 2.0
        elif self._increase_stage < 10:
            self.target_rate_bps = min(
                self.line_rate_bps, self.target_rate_bps + self.rate_ai_bps
            )
            self.rate_bps = (self.rate_bps + self.target_rate_bps) / 2.0
        else:
            self.target_rate_bps = min(
                self.line_rate_bps, self.target_rate_bps + self.rate_hai_bps
            )
            self.rate_bps = (self.rate_bps + self.target_rate_bps) / 2.0
        self._increase_stage += 1
        self._clamp()
