"""DCQCN congestion-control model (Zhu et al., SIGCOMM 2015).

DCQCN is the default RDMA congestion control in the paper's evaluation.  The
switch ECN-marks packets with a RED profile; the receiver reflects marks as
CNPs; the sender keeps an EWMA ``alpha`` of the marking level, cuts its rate
multiplicatively when CNPs arrive and recovers through fast-recovery /
additive-increase / hyper-increase stages.

This model keeps the rate-based core of the algorithm (alpha EWMA, cut by
``alpha/2``, staged recovery toward a target rate) and drives it from the
fluid simulation's delayed ECN-fraction feedback.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, cc_param, cc_state, register_cc

__all__ = ["DCQCN"]


@register_cc
class DCQCN(CongestionControl):
    """Rate-based DCQCN model.

    All mutable algorithm state (``alpha``, the target rate, both timer
    accumulators, the increase stage) plus the static parameters live in a
    per-class :class:`~repro.simulator.flow_table.ColumnBlock` while the
    instance is bound to a :class:`~repro.simulator.flow_table.FlowTable`
    (the SoA simulator core); instance attributes are then views onto the
    row, and the batched feedback/advance paths run as in-place masked
    column operations with no per-object gather or writeback.  Unbound
    instances (the scalar reference path, unit tests) keep plain-attribute
    behaviour.
    """

    name = "dcqcn"

    #: declarative FlowTable block: algorithm state + static parameters
    #: (parameters are replicated per row so the masked column math never
    #: needs a per-object gather; ``rate_bps`` lives in the table's core
    #: ``cc_rate_bps`` column shared by every CC class)
    cc_columns = {
        "alpha": cc_state("alpha"),
        "target": cc_state("target_rate_bps"),
        "t_alpha": cc_state("_time_since_alpha_update"),
        "t_inc": cc_state("_time_since_increase"),
        "stage": cc_state("_increase_stage", py=int),
        "congested": cc_state("_congested_recently", dtype="?", py=bool),
        "p_interval": cc_param("alpha_resume_interval_s"),
        "p_g": cc_param("g"),
        "p_inc": cc_param("increase_timer_s"),
        "p_line": cc_param("line_rate_bps"),
        "p_ai": cc_param("rate_ai_bps"),
        "p_hai": cc_param("rate_hai_bps"),
        "p_floor": cc_param("min_rate_bps"),
        "p_thresh": cc_param("ecn_threshold"),
    }

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        g: float = 1 / 16,
        rate_ai_bps: float = 200e6,
        rate_hai_bps: float = 1e9,
        alpha_resume_interval_s: float = 55e-6,
        increase_timer_s: float = 0.3e-3,
        ecn_threshold: float = 0.01,
    ) -> None:
        """Create a DCQCN instance.

        Args:
            g: alpha EWMA gain.
            rate_ai_bps: additive-increase step.
            rate_hai_bps: hyper-increase step.
            alpha_resume_interval_s: cadence of alpha decay without CNPs.
            increase_timer_s: cadence of rate-increase events.
            ecn_threshold: ECN fraction above which feedback counts as a CNP.
        """
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.g = g
        self.rate_ai_bps = rate_ai_bps
        self.rate_hai_bps = rate_hai_bps
        self.alpha_resume_interval_s = alpha_resume_interval_s
        self.increase_timer_s = increase_timer_s
        self.ecn_threshold = ecn_threshold

        self.alpha = 1.0
        self.target_rate_bps = float(line_rate_bps)
        self._time_since_increase = 0.0
        self._time_since_alpha_update = 0.0
        self._increase_stage = 0
        self._congested_recently = False
        #: immutable parameters packed once for the batched paths; the
        #: tuple is interned through a class-level cache so a fleet built
        #: by one factory shares a single object, letting the batch paths
        #: detect parameter uniformity with identity checks
        params = (
            self.alpha_resume_interval_s,
            self.g,
            self.increase_timer_s,
            self.line_rate_bps,
            self.rate_ai_bps,
            self.rate_hai_bps,
            self.min_rate_bps,
            self.ecn_threshold,
        )
        self._batch_params = DCQCN._PARAM_CACHE.setdefault(params, params)

    #: interning cache for :attr:`_batch_params` (bounded: one entry per
    #: distinct parameterisation ever constructed)
    _PARAM_CACHE: dict = {}

    # The FlowTable views (bound-state properties, push/pull at bind and
    # release) are derived from :attr:`cc_columns` by the base class.

    @classmethod
    def _gather_params(cls, controllers, *columns):
        """Per-lane parameter columns, as scalars when the fleet is uniform.

        Uniform fleets (the common case: one factory builds every flow's
        controller) share one interned ``_batch_params`` tuple, so an
        identity scan suffices and the batch maths runs on Python floats
        broadcast by numpy; mixed fleets fall back to real columns.
        """
        first = controllers[0]._batch_params
        if all(cc._batch_params is first for cc in controllers):
            return tuple(first[c] for c in columns)
        table = np.array([cc._batch_params for cc in controllers])
        return tuple(table[:, c] for c in columns)

    # ------------------------------------------------------------------ #
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Process one (delayed) feedback sample as a CNP indication."""
        self.feedback_count += 1
        congested = signal.ecn_fraction > self.ecn_threshold
        if congested:
            # alpha rises toward the observed marking level, rate is cut
            self.alpha = (1 - self.g) * self.alpha + self.g * min(1.0, signal.ecn_fraction * 4)
            self.target_rate_bps = self.rate_bps
            self.rate_bps *= 1 - self.alpha / 2.0
            self._increase_stage = 0
            self._congested_recently = True
            self._clamp()
        else:
            self._congested_recently = False

    def on_interval(self, dt: float, now: float) -> None:
        """Alpha decay and staged rate recovery.

        The decay/recovery cadences are much shorter than the 1 ms update
        step, so both timer loops run many iterations per call for every
        active flow; they work on locals (hot path — exact same float
        operations as the straightforward attribute version).
        """
        elapsed = self._time_since_alpha_update + dt
        interval = self.alpha_resume_interval_s
        if elapsed >= interval:
            alpha = self.alpha
            decay = 1 - self.g
            while elapsed >= interval:
                elapsed -= interval
                alpha *= decay
            self.alpha = alpha
        self._time_since_alpha_update = elapsed

        elapsed = self._time_since_increase + dt
        interval = self.increase_timer_s
        while elapsed >= interval:
            elapsed -= interval
            self._increase_once()
        self._time_since_increase = elapsed

    @classmethod
    def feedback_batch(
        cls, controllers: Sequence["DCQCN"], generated_s, ecn, util, rtt, qd, now
    ) -> None:
        """Array implementation of :meth:`on_feedback`, one signal each.

        DCQCN reacts only to the ECN fraction, so the other signal fields
        pass through untouched and no :class:`FeedbackSignal` objects are
        materialised.  Lane ``i`` applies exactly the operations instance
        ``i`` would: uncongested lanes only flip ``_congested_recently``;
        congested lanes run the alpha EWMA, the multiplicative cut and the
        clamp.
        """
        if not len(controllers):
            return
        ecn = np.asarray(ecn)
        g, line, floor, threshold = cls._gather_params(controllers, 1, 3, 6, 7)
        state = np.array(
            [(cc.alpha, cc.rate_bps, cc.target_rate_bps) for cc in controllers]
        )
        alpha, rate, target = state[:, 0], state[:, 1], state[:, 2]

        congested = ecn > threshold
        alpha = np.where(
            congested, (1 - g) * alpha + g * np.minimum(1.0, ecn * 4), alpha
        )
        target = np.where(congested, rate, target)
        rate = np.where(congested, rate * (1 - alpha / 2.0), rate)
        rate = np.where(congested, np.minimum(line, np.maximum(floor, rate)), rate)

        alpha_l = alpha.tolist()
        rate_l = rate.tolist()
        target_l = target.tolist()
        congested_l = congested.tolist()
        for i, cc in enumerate(controllers):
            cc.feedback_count += 1
            hit = congested_l[i]
            cc._congested_recently = hit
            if hit:
                cc.alpha = alpha_l[i]
                cc.rate_bps = rate_l[i]
                cc.target_rate_bps = target_l[i]
                cc._increase_stage = 0

    @classmethod
    def advance_batch(
        cls, controllers: Sequence["DCQCN"], dt: float, now: float
    ) -> None:
        """Array implementation of :meth:`on_interval` over many instances.

        Both timer cadences (55 µs alpha decay, 0.3 ms increase) are much
        shorter than the 1 ms update step, so the scalar method runs ~20
        Python loop iterations per flow per step; here the same iterations
        run as masked array operations across all flows at once.  Every
        lane performs exactly the float operations its instance would —
        lanes whose timer has not crossed a boundary are carried through
        ``np.where`` unchanged — so batched and scalar advancement produce
        bit-identical controller state.
        """
        if not controllers:
            return
        interval, g, inc_interval, line, ai, hai, floor = cls._gather_params(
            controllers, 0, 1, 2, 3, 4, 5, 6
        )
        state = np.array(
            [
                (
                    cc.alpha,
                    cc._time_since_alpha_update,
                    cc._time_since_increase,
                    cc.rate_bps,
                    cc.target_rate_bps,
                    cc._increase_stage,
                )
                for cc in controllers
            ]
        )
        alpha, elapsed, inc_elapsed, rate, target, stage = (
            state[:, 0],
            state[:, 1] + dt,
            state[:, 2] + dt,
            state[:, 3],
            state[:, 4],
            state[:, 5],
        )

        # alpha decay
        decay = 1 - g
        pending = elapsed >= interval
        while pending.any():
            elapsed = np.where(pending, elapsed - interval, elapsed)
            alpha = np.where(pending, alpha * decay, alpha)
            pending = elapsed >= interval

        # staged rate recovery (fast recovery / AI / hyper increase)
        pending = inc_elapsed >= inc_interval
        while pending.any():
            inc_elapsed = np.where(pending, inc_elapsed - inc_interval, inc_elapsed)
            ai_lane = pending & (stage >= 5) & (stage < 10)
            hai_lane = pending & (stage >= 10)
            target = np.where(ai_lane, np.minimum(line, target + ai), target)
            target = np.where(hai_lane, np.minimum(line, target + hai), target)
            rate = np.where(pending, (rate + target) / 2.0, rate)
            stage = np.where(pending, stage + 1, stage)
            rate = np.where(pending, np.minimum(line, np.maximum(floor, rate)), rate)
            pending = inc_elapsed >= inc_interval

        alpha_l = alpha.tolist()
        elapsed_l = elapsed.tolist()
        inc_elapsed_l = inc_elapsed.tolist()
        rate_l = rate.tolist()
        target_l = target.tolist()
        stage_l = stage.tolist()
        for i, cc in enumerate(controllers):
            cc.alpha = alpha_l[i]
            cc._time_since_alpha_update = elapsed_l[i]
            cc._time_since_increase = inc_elapsed_l[i]
            cc.rate_bps = rate_l[i]
            cc.target_rate_bps = target_l[i]
            cc._increase_stage = int(stage_l[i])

    # ------------------------------------------------------------------ #
    # FlowTable slot batches: the SoA core's hot paths.  Same arithmetic
    # as feedback_batch / advance_batch lane for lane, but state is read
    # from and written to the table's column block directly — no object
    # gather, no .tolist() writeback loop.
    # ------------------------------------------------------------------ #
    @classmethod
    def feedback_batch_slots(
        cls, table, slots, generated_s, ecn, util, rtt, qd, now
    ) -> None:
        """In-place :meth:`feedback_batch` over FlowTable rows ``slots``."""
        if not len(slots):
            return
        block = table.cc_block(cls)
        # no boundary cast: feedback arrays and table columns hold their
        # canonical float64 dtype (enforced at FlowTable growth time)
        where = table.backend.masked_where
        g = block.p_g[slots]
        line = block.p_line[slots]
        floor = block.p_floor[slots]
        threshold = block.p_thresh[slots]
        alpha = block.alpha[slots]
        rate = table.cc_rate_bps[slots]
        target = block.target[slots]

        congested = ecn > threshold
        alpha = where(
            congested, (1 - g) * alpha + g * np.minimum(1.0, ecn * 4), alpha
        )
        target = where(congested, rate, target)
        rate = where(congested, rate * (1 - alpha / 2.0), rate)
        rate = where(congested, np.minimum(line, np.maximum(floor, rate)), rate)

        block.alpha[slots] = alpha
        table.cc_rate_bps[slots] = rate
        block.target[slots] = target
        block.stage[slots] = where(congested, 0.0, block.stage[slots])
        block.congested[slots] = congested
        table.feedback_count[slots] += 1

    @classmethod
    def advance_batch_slots(cls, table, slots, dt: float, now: float) -> None:
        """In-place :meth:`advance_batch` over FlowTable rows ``slots``."""
        if not len(slots):
            return
        block = table.cc_block(cls)
        where = table.backend.masked_where
        interval = block.p_interval[slots]
        g = block.p_g[slots]
        inc_interval = block.p_inc[slots]
        line = block.p_line[slots]
        ai = block.p_ai[slots]
        hai = block.p_hai[slots]
        floor = block.p_floor[slots]
        alpha = block.alpha[slots]
        elapsed = block.t_alpha[slots] + dt
        inc_elapsed = block.t_inc[slots] + dt
        rate = table.cc_rate_bps[slots]
        target = block.target[slots]
        stage = block.stage[slots]

        # alpha decay
        decay = 1 - g
        pending = elapsed >= interval
        while pending.any():
            elapsed = where(pending, elapsed - interval, elapsed)
            alpha = where(pending, alpha * decay, alpha)
            pending = elapsed >= interval

        # staged rate recovery (fast recovery / AI / hyper increase)
        pending = inc_elapsed >= inc_interval
        while pending.any():
            inc_elapsed = where(pending, inc_elapsed - inc_interval, inc_elapsed)
            ai_lane = pending & (stage >= 5) & (stage < 10)
            hai_lane = pending & (stage >= 10)
            target = where(ai_lane, np.minimum(line, target + ai), target)
            target = where(hai_lane, np.minimum(line, target + hai), target)
            rate = where(pending, (rate + target) / 2.0, rate)
            stage = where(pending, stage + 1, stage)
            rate = where(pending, np.minimum(line, np.maximum(floor, rate)), rate)
            pending = inc_elapsed >= inc_interval

        block.alpha[slots] = alpha
        block.t_alpha[slots] = elapsed
        block.t_inc[slots] = inc_elapsed
        table.cc_rate_bps[slots] = rate
        block.target[slots] = target
        block.stage[slots] = stage

    # ------------------------------------------------------------------ #
    def _increase_once(self) -> None:
        """One recovery step: fast recovery, then AI, then hyper increase."""
        if self._increase_stage < 5:
            # fast recovery: move halfway back to the target rate
            self.rate_bps = (self.rate_bps + self.target_rate_bps) / 2.0
        elif self._increase_stage < 10:
            self.target_rate_bps = min(
                self.line_rate_bps, self.target_rate_bps + self.rate_ai_bps
            )
            self.rate_bps = (self.rate_bps + self.target_rate_bps) / 2.0
        else:
            self.target_rate_bps = min(
                self.line_rate_bps, self.target_rate_bps + self.rate_hai_bps
            )
            self.rate_bps = (self.rate_bps + self.target_rate_bps) / 2.0
        self._increase_stage += 1
        self._clamp()
