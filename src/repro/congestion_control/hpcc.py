"""HPCC congestion-control model (Li et al., SIGCOMM 2019).

HPCC uses in-band network telemetry: every ACK carries the precise
utilisation of each hop, and the sender adjusts its window so the bottleneck
stays just below a target utilisation ``eta`` (0.95 in the paper).  The fluid
simulation summarises the per-hop telemetry as the maximum utilisation along
the path, which is exactly the quantity HPCC's window update reacts to.
"""

from __future__ import annotations

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, register_cc

__all__ = ["HPCC"]


@register_cc
class HPCC(CongestionControl):
    """Rate-based HPCC model driven by max-hop utilisation telemetry."""

    name = "hpcc"

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        eta: float = 0.95,
        max_stage: int = 5,
        wai_fraction: float = 0.01,
    ) -> None:
        """Create an HPCC instance.

        Args:
            eta: target bottleneck utilisation.
            max_stage: additive-increase stages before a fresh multiplicative
                adjustment is allowed (mirrors HPCC's ``maxStage``).
            wai_fraction: additive-increase step as a fraction of line rate.
        """
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.eta = eta
        self.max_stage = max_stage
        self.wai_bps = wai_fraction * line_rate_bps
        self._stage = 0
        self._reference_rate_bps = float(line_rate_bps)

    # ------------------------------------------------------------------ #
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Window update from the max-hop utilisation sample."""
        self.feedback_count += 1
        utilization = max(signal.max_utilization, 1e-6)
        if utilization > self.eta or self._stage >= self.max_stage:
            # multiplicative adjustment toward eta, plus a small AI term
            self._reference_rate_bps = (
                self._reference_rate_bps * (self.eta / utilization) + self.wai_bps
            )
            self._stage = 0
        else:
            # additive increase while comfortably below target
            self._reference_rate_bps = self._reference_rate_bps + self.wai_bps
            self._stage += 1
        self.rate_bps = self._reference_rate_bps
        self._clamp()
        self._reference_rate_bps = self.rate_bps

    def on_interval(self, dt: float, now: float) -> None:
        """HPCC is purely ACK-clocked; nothing to do between feedback."""
