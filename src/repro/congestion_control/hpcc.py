"""HPCC congestion-control model (Li et al., SIGCOMM 2019).

HPCC uses in-band network telemetry: every ACK carries the precise
utilisation of each hop, and the sender adjusts its window so the bottleneck
stays just below a target utilisation ``eta`` (0.95 in the paper).  The fluid
simulation summarises the per-hop telemetry as the maximum utilisation along
the path, which is exactly the quantity HPCC's window update reacts to.
"""

from __future__ import annotations

import numpy as np

from ..simulator.flow import FeedbackSignal
from .base import CongestionControl, cc_param, cc_state, register_cc

__all__ = ["HPCC"]


@register_cc
class HPCC(CongestionControl):
    """Rate-based HPCC model driven by max-hop utilisation telemetry.

    The reference rate and AI stage are block-resident while bound to a
    :class:`~repro.simulator.flow_table.FlowTable`; the slot-batch feedback
    kernel runs the exact scalar window update as in-place masked column
    operations.  HPCC is purely ACK-clocked, so its periodic kernel is a
    no-op like :meth:`on_interval`.
    """

    name = "hpcc"

    cc_columns = {
        "ref": cc_state("_reference_rate_bps"),
        "stage": cc_state("_stage", dtype="i8", py=int),
        "p_eta": cc_param("eta"),
        "p_maxstage": cc_param("max_stage", dtype="i8"),
        "p_wai": cc_param("wai_bps"),
        "p_line": cc_param("line_rate_bps"),
        "p_floor": cc_param("min_rate_bps"),
    }

    def __init__(
        self,
        line_rate_bps: float,
        base_rtt_s: float,
        min_rate_bps: float = 1e6,
        eta: float = 0.95,
        max_stage: int = 5,
        wai_fraction: float = 0.01,
    ) -> None:
        """Create an HPCC instance.

        Args:
            eta: target bottleneck utilisation.
            max_stage: additive-increase stages before a fresh multiplicative
                adjustment is allowed (mirrors HPCC's ``maxStage``).
            wai_fraction: additive-increase step as a fraction of line rate.
        """
        super().__init__(line_rate_bps, base_rtt_s, min_rate_bps)
        self.eta = eta
        self.max_stage = max_stage
        self.wai_bps = wai_fraction * line_rate_bps
        self._stage = 0
        self._reference_rate_bps = float(line_rate_bps)

    # ------------------------------------------------------------------ #
    def on_feedback(self, signal: FeedbackSignal, now: float) -> None:
        """Window update from the max-hop utilisation sample."""
        self.feedback_count += 1
        utilization = max(signal.max_utilization, 1e-6)
        if utilization > self.eta or self._stage >= self.max_stage:
            # multiplicative adjustment toward eta, plus a small AI term
            self._reference_rate_bps = (
                self._reference_rate_bps * (self.eta / utilization) + self.wai_bps
            )
            self._stage = 0
        else:
            # additive increase while comfortably below target
            self._reference_rate_bps = self._reference_rate_bps + self.wai_bps
            self._stage += 1
        self.rate_bps = self._reference_rate_bps
        self._clamp()
        self._reference_rate_bps = self.rate_bps

    def on_interval(self, dt: float, now: float) -> None:
        """HPCC is purely ACK-clocked; nothing to do between feedback."""

    # ------------------------------------------------------------------ #
    # FlowTable slot batches: in-place column kernels, lane-for-lane
    # identical to on_feedback / on_interval above.
    # ------------------------------------------------------------------ #
    @classmethod
    def feedback_batch_slots(
        cls, table, slots, generated_s, ecn, util, rtt, qd, now
    ) -> None:
        """In-place :meth:`on_feedback` over FlowTable rows ``slots``."""
        if not len(slots):
            return
        block = table.cc_block(cls)
        table.feedback_count[slots] += 1

        # no boundary cast: the feedback arrays arrive float64 (FlowTable
        # columns are dtype-checked at growth time)
        where = table.backend.masked_where
        utilization = np.maximum(util, 1e-6)
        eta = block.p_eta[slots]
        wai = block.p_wai[slots]
        stage = block.stage[slots]
        ref = block.ref[slots]

        adjust = (utilization > eta) | (stage >= block.p_maxstage[slots])
        ref = where(adjust, ref * (eta / utilization) + wai, ref + wai)
        stage = where(adjust, 0, stage + 1)
        # rate = clamp(ref); the reference rate then snaps to the clamped rate
        rate = np.minimum(block.p_line[slots], np.maximum(block.p_floor[slots], ref))

        block.ref[slots] = rate
        block.stage[slots] = stage
        table.cc_rate_bps[slots] = rate

    @classmethod
    def advance_batch_slots(cls, table, slots, dt: float, now: float) -> None:
        """HPCC is purely ACK-clocked; the periodic kernel is a no-op."""
