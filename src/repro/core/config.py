"""LCMP configuration: every integer weight, shift and threshold in one place.

The paper's sensitivity study (§7) sweeps the global fusion weights
``(alpha, beta)``, the path-quality weights ``(w_dl, w_lc)`` and the
congestion weights ``(w_ql, w_tl, w_dp)``; the recommended production
defaults are ``alpha:beta = 3:1``, ``w_dl:w_lc = 3:1`` and
``w_ql:w_tl:w_dp = 2:1:1``.  Those defaults are encoded here, and the
experiment harness builds ablations (``rm-alpha``, ``rm-beta``) and sweeps by
overriding individual fields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["LCMPConfig"]


@dataclass(frozen=True)
class LCMPConfig:
    """All LCMP tunables (integer-friendly, as installed on the switch).

    Attributes:
        alpha: weight of the path-quality term in the fused cost (Eq. 1).
        beta: weight of the congestion term in the fused cost (Eq. 1).
        w_dl: weight of the delay score inside C_path (Eq. 2).
        w_lc: weight of the link-capacity score inside C_path (Eq. 2).
        path_shift: right-shift normalising the weighted path score back to
            the 0–255 range (S_path in Eq. 2).
        w_ql: weight of the instantaneous queue level inside C_cong (Eq. 4).
        w_tl: weight of the short-term trend level inside C_cong (Eq. 4).
        w_dp: weight of the duration penalty inside C_cong (Eq. 4).
        cong_shift: right-shift normalising the weighted congestion score
            (S_cong in Eq. 5).
        max_delay_ms: saturation point of the delay mapping (Alg. 1).  Must
            be a power of two so the division is a right shift.  The paper's
            example is 32 ms; inter-DC deployments with sub-second one-way
            delays configure 512 ms (our experiment default).
        trend_ewma_shift: K in the shift-based EWMA of the queue trend
            (Eq. 3).
        num_levels: number of quantisation levels in the bootstrap tables.
        high_water_level: queue level at or above which the duration counter
            accumulates.
        duration_decay: how much the duration counter decays per sample when
            the queue is below the high-water mark.
        duration_shift: right shift converting the duration counter into a
            penalty score.
        keep_fraction: fraction of the (cost-sorted) candidate list retained
            before the diversity-preserving hash (0.5 in the paper).
        congested_threshold: C_cong value at or above which a candidate
            counts as "highly congested"; when every candidate crosses it the
            selection falls back to the minimum-cost path.
        flow_cache_capacity: bounded size of the per-switch flow cache.
        flow_idle_timeout_s: idle timeout used by flow-cache garbage
            collection.
        hash_salt: salt of the diversity-preserving hash.
    """

    # Eq. 1 — global fusion
    alpha: int = 3
    beta: int = 1
    # Eq. 2 — path quality
    w_dl: int = 3
    w_lc: int = 1
    path_shift: int = 2
    # Eq. 4/5 — congestion
    w_ql: int = 2
    w_tl: int = 1
    w_dp: int = 1
    cong_shift: int = 2
    # Alg. 1 — delay mapping
    max_delay_ms: int = 512
    # Eq. 3 — trend EWMA
    trend_ewma_shift: int = 3
    # bootstrap tables
    num_levels: int = 10
    # duration penalty
    high_water_level: int = 7
    duration_decay: int = 2
    duration_shift: int = 2
    # selection
    keep_fraction: float = 0.5
    congested_threshold: int = 200
    # flow cache
    flow_cache_capacity: int = 50_000
    flow_idle_timeout_s: float = 1.0
    hash_salt: int = 0x9E3779B1

    # ------------------------------------------------------------------ #
    def with_overrides(self, **kwargs) -> "LCMPConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Check integer ranges and power-of-two constraints.

        Raises:
            ValueError: when a weight is negative, ``max_delay_ms`` is not a
                power of two, or ``keep_fraction`` is out of range.
        """
        for field_name in ("alpha", "beta", "w_dl", "w_lc", "w_ql", "w_tl", "w_dp"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.alpha == 0 and self.beta == 0:
            raise ValueError("alpha and beta cannot both be zero")
        if self.max_delay_ms <= 0 or self.max_delay_ms & (self.max_delay_ms - 1):
            raise ValueError("max_delay_ms must be a positive power of two")
        if not 0 < self.keep_fraction <= 1:
            raise ValueError("keep_fraction must be in (0, 1]")
        if self.num_levels < 2:
            raise ValueError("num_levels must be at least 2")
        if not 0 <= self.high_water_level < self.num_levels:
            raise ValueError("high_water_level must be a valid level index")
        if self.flow_cache_capacity <= 0:
            raise ValueError("flow_cache_capacity must be positive")
        if self.flow_idle_timeout_s <= 0:
            raise ValueError("flow_idle_timeout_s must be positive")

    @property
    def delay_shift(self) -> int:
        """Right shift equivalent to dividing by ``max_delay_ms`` (Alg. 1)."""
        return self.max_delay_ms.bit_length() - 1

    # convenience constructors for the ablations of §7.1
    def ablate_path_quality(self) -> "LCMPConfig":
        """The ``rm-alpha`` variant: path-quality term removed."""
        return self.with_overrides(alpha=0, beta=max(self.beta, 1))

    def ablate_congestion(self) -> "LCMPConfig":
        """The ``rm-beta`` variant: congestion term removed."""
        return self.with_overrides(beta=0, alpha=max(self.alpha, 1))
