"""Realtime on-switch congestion estimator C_cong (paper §3.3, Eq. 3–5).

Each DCI egress port keeps four small registers (the paper's §4 accounting:
``queueCur``, ``queuePrev``, ``trend``, ``durCnt`` plus a timestamp).  The
monitor samples the port queue at a modest cadence and the estimator fuses
three signals:

* ``Q`` — the instantaneous queue level, quantised through the bootstrap
  queue thresholds and converted to a 0–255 score;
* ``T`` — a short-term trend from a shift-based EWMA of the queue-byte delta
  between samples (Eq. 3), normalised per link-rate bucket; negative trends
  map to zero so only *growing* queues attract cost;
* ``D`` — a duration (persistence) penalty that accumulates while the queue
  level stays above a high-water mark and decays otherwise.

The fused score is ``C_cong = min((w_ql*Q + w_tl*T + w_dp*D) >> S_cong, 255)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .config import LCMPConfig
from .switch_tables import SwitchTables

__all__ = ["PortCongestionState", "CongestionEstimator"]


@dataclass
class PortCongestionState:
    """The per-port registers of the congestion estimator (24 B on-switch)."""

    queue_cur: int = 0
    queue_prev: int = 0
    trend: int = 0
    dur_cnt: int = 0
    last_sample_s: float = -1.0
    #: port rate, used to choose the trend-normalisation bucket
    rate_bps: float = 0.0
    #: most recently observed sampling interval (robustness to cadence)
    observed_interval_s: float = 0.0


class CongestionEstimator:
    """Maintains per-port congestion state and produces C_cong scores."""

    def __init__(self, tables: SwitchTables, config: Optional[LCMPConfig] = None) -> None:
        self.tables = tables
        self.config = config or tables.config
        self._ports: Dict[str, PortCongestionState] = {}

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def observe(self, port: str, queue_bytes: float, rate_bps: float, now: float) -> PortCongestionState:
        """Feed one monitor sample for ``port``.

        Updates the instantaneous queue register, the shift-EWMA trend
        (Eq. 3) and the duration counter, and records the observed sampling
        interval so trend normalisation stays correct if the cadence drifts.
        """
        state = self._ports.setdefault(port, PortCongestionState(rate_bps=rate_bps))
        state.rate_bps = rate_bps

        if state.last_sample_s >= 0:
            state.observed_interval_s = max(0.0, now - state.last_sample_s)
        state.last_sample_s = now

        state.queue_prev = state.queue_cur
        state.queue_cur = int(queue_bytes)

        delta = state.queue_cur - state.queue_prev
        k = self.config.trend_ewma_shift
        # Eq. 3: T = T_old - (T_old >> K) + (delta >> K), in integer arithmetic.
        # Python's >> floors toward -inf which matches the hardware behaviour
        # for non-negative accumulators; deltas may be negative so we shift
        # their magnitude and restore the sign.
        delta_shifted = (abs(delta) >> k) * (1 if delta >= 0 else -1)
        state.trend = state.trend - (state.trend >> k) + delta_shifted

        level = self.tables.queue_level(state.queue_cur)
        if level >= self.config.high_water_level:
            state.dur_cnt += 1
        else:
            state.dur_cnt = max(0, state.dur_cnt - self.config.duration_decay)
        return state

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def queue_score(self, port: str) -> int:
        """Q: quantised instantaneous queue level as a 0–255 score."""
        state = self._ports.get(port)
        if state is None:
            return 0
        return self.tables.level_score(self.tables.queue_level(state.queue_cur))

    def trend_score(self, port: str) -> int:
        """T: trend level as a 0–255 score (zero for non-growing queues)."""
        state = self._ports.get(port)
        if state is None or state.trend <= 0 or state.rate_bps <= 0:
            return 0
        level = self.tables.trend_level(
            state.trend, state.rate_bps, state.observed_interval_s or None
        )
        return self.tables.level_score(level)

    def duration_score(self, port: str) -> int:
        """D: persistence penalty (right-shifted duration counter, capped)."""
        state = self._ports.get(port)
        if state is None:
            return 0
        return min(255, state.dur_cnt >> self.config.duration_shift)

    def congestion_score(self, port: str) -> int:
        """C_cong for ``port`` (Eq. 4 and Eq. 5)."""
        q = self.queue_score(port)
        t = self.trend_score(port)
        d = self.duration_score(port)
        cong_score = self.config.w_ql * q + self.config.w_tl * t + self.config.w_dp * d
        return min(cong_score >> self.config.cong_shift, 255)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def port_state(self, port: str) -> Optional[PortCongestionState]:
        """Raw register state of a port (None when never sampled)."""
        return self._ports.get(port)

    def ports(self) -> list:
        """All ports the estimator has seen."""
        return sorted(self._ports)

    def reset(self, port: Optional[str] = None) -> None:
        """Drop state for one port, or all ports when ``port`` is None."""
        if port is None:
            self._ports.clear()
        else:
            self._ports.pop(port, None)
