"""LCMP control plane (paper §3.2, §5).

The control plane does only slow-path work: at provisioning time it reads
the topology's per-link one-way delays and configured capacities, builds the
bootstrap tables of Fig. 3, precomputes the per-path quality score C_path for
every candidate route, and installs both on each DCI switch's LCMP instance.
It also pushes the default fusion weights (alpha, beta) = (3, 1) for operator
tuning.  Nothing here runs at packet time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..topology.graph import Topology
from ..topology.paths import PathSet
from .config import LCMPConfig
from .path_quality import candidate_path_quality
from .switch_tables import SwitchTables

__all__ = ["ControlPlane", "lcmp_router_factory"]

#: key identifying a candidate route: (destination DC, route DC sequence)
PathKey = Tuple[str, Tuple[str, ...]]


class ControlPlane:
    """Precomputes and installs LCMP's slow-path state."""

    def __init__(
        self,
        topology: Topology,
        pathset: PathSet,
        config: Optional[LCMPConfig] = None,
        monitor_interval_s: float = 1e-3,
    ) -> None:
        self.topology = topology
        self.pathset = pathset
        self.config = config or LCMPConfig()
        self.config.validate()
        self.monitor_interval_s = monitor_interval_s
        self._tables_cache: Optional[SwitchTables] = None

    # ------------------------------------------------------------------ #
    # table generation
    # ------------------------------------------------------------------ #
    def build_tables(self) -> SwitchTables:
        """Bootstrap the switch tables from the topology's provisioning.

        The capacity-class boundaries are proportional to the largest
        provisioned inter-DC capacity; the queue thresholds use the deepest
        inter-DC buffer; trend tables are pre-installed for every link-rate
        bucket present in the topology.
        """
        if self._tables_cache is not None:
            return self._tables_cache
        inter_links = self.topology.inter_dc_links()
        if not inter_links:
            raise ValueError("topology has no inter-DC links to provision")
        max_cap = max(spec.cap_bps for spec in inter_links)
        buffer_bytes = max(spec.buffer_bytes for spec in inter_links)
        rates = sorted({spec.cap_bps for spec in inter_links})
        self._tables_cache = SwitchTables.bootstrap(
            config=self.config,
            max_capacity_bps=max_cap,
            buffer_bytes=buffer_bytes,
            link_rates_bps=rates,
            trend_interval_s=self.monitor_interval_s,
        )
        return self._tables_cache

    def compute_path_scores(self, src_dc: str) -> Dict[PathKey, int]:
        """C_path for every candidate route out of ``src_dc``."""
        tables = self.build_tables()
        scores: Dict[PathKey, int] = {}
        for dst_dc in self.topology.dcs:
            if dst_dc == src_dc:
                continue
            for candidate in self.pathset.candidates(src_dc, dst_dc):
                scores[(dst_dc, candidate.dcs)] = candidate_path_quality(
                    candidate, tables, self.config
                )
        return scores

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #
    def install(self, router, src_dc: str) -> None:
        """Install tables + path scores on one LCMP router instance.

        With a lazy path set the up-front score walk is skipped — it
        would materialize every (src, dst) pair at provisioning time,
        exactly the O(N²) enumeration laziness exists to avoid.  The
        router derives each score on demand from the same tables and
        config (:meth:`LCMPRouter._path_quality_of` calls the identical
        ``candidate_path_quality``), so decisions are bit-identical; the
        lazy/eager equivalence suite pins that.
        """
        tables = self.build_tables()
        if getattr(self.pathset, "lazy", False):
            scores: Dict[PathKey, int] = {}
        else:
            scores = self.compute_path_scores(src_dc)
        router.install_tables(tables, scores)

    def install_all(self, network) -> int:
        """Install on every LCMP router of a runtime network.

        Non-LCMP routers (baselines) are skipped.  Returns the number of
        switches provisioned.
        """
        installed = 0
        for dc, switch in network.switches.items():
            router = switch.router
            if hasattr(router, "install_tables"):
                self.install(router, dc)
                installed += 1
        return installed


def lcmp_router_factory(
    topology: Topology,
    pathset: PathSet,
    config: Optional[LCMPConfig] = None,
    monitor_interval_s: float = 1e-3,
):
    """Router factory that provisions each LCMP instance at creation time.

    This is the convenient way to plug LCMP into a
    :class:`~repro.simulator.network.RuntimeNetwork`::

        factory = lcmp_router_factory(topology, pathset, LCMPConfig())
        network = RuntimeNetwork(topology, pathset, factory)
    """
    from .lcmp_router import LCMPRouter  # local import: avoid circular import

    control_plane = ControlPlane(
        topology, pathset, config=config, monitor_interval_s=monitor_interval_s
    )

    def factory(dc: str) -> "LCMPRouter":
        router = LCMPRouter(config=control_plane.config)
        control_plane.install(router, dc)
        return router

    return factory
