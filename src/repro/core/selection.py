"""Diversity-preserving selection for herd mitigation (paper §3.4).

When many flows arrive nearly simultaneously and each picks the currently
cheapest path, they collapse onto the same next hop (the herd effect).  LCMP
therefore selects in two stages:

1. **filter** — sort candidates by fused cost and drop the expensive suffix,
   keeping the low-cost half (``keep_fraction``);
2. **diversity-preserving hash** — ECMP-style hashing of the flow id inside
   the reduced set, so simultaneous arrivals spread across all good paths.

Fallback: when every candidate is highly congested the randomisation is
pointless, so the minimum-cost path is chosen directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..routing.base import flow_hash
from .config import LCMPConfig
from .cost_fusion import PathCost

__all__ = ["SelectionOutcome", "filter_candidates", "select_path"]


@dataclass(frozen=True)
class SelectionOutcome:
    """The result of one two-stage selection, with bookkeeping for tests."""

    chosen: PathCost
    reduced_set: List[PathCost]
    all_congested: bool


def filter_candidates(costs: Sequence[PathCost], keep_fraction: float) -> List[PathCost]:
    """Stage 1: sort by fused cost and keep the low-cost prefix.

    At least one candidate is always retained.  Ties are broken by the
    candidate's DC sequence so the reduced set is deterministic.
    """
    if not costs:
        raise ValueError("no candidates to filter")
    if not 0 < keep_fraction <= 1:
        raise ValueError("keep_fraction must be in (0, 1]")
    ordered = sorted(costs, key=lambda c: (c.fused, c.candidate.dcs))
    keep = max(1, math.ceil(len(ordered) * keep_fraction))
    return ordered[:keep]


def select_path(
    costs: Sequence[PathCost],
    flow_id: int,
    config: LCMPConfig,
) -> SelectionOutcome:
    """Run the full two-stage selection for one new flow.

    Args:
        costs: fused costs of every live candidate.
        flow_id: the flow identifier fed to the diversity-preserving hash.
        config: keep fraction, congestion-fallback threshold and hash salt.

    Returns:
        A :class:`SelectionOutcome`; ``chosen`` is the selected path.
    """
    if not costs:
        raise ValueError("no candidates to select from")

    all_congested = all(c.congestion >= config.congested_threshold for c in costs)
    if all_congested:
        # randomising among uniformly bad choices is pointless: take the
        # minimum-cost path (paper §3.4, fallbacks and corner cases)
        best = min(costs, key=lambda c: (c.fused, c.candidate.dcs))
        return SelectionOutcome(chosen=best, reduced_set=[best], all_congested=True)

    reduced = filter_candidates(costs, config.keep_fraction)
    index = flow_hash(flow_id, config.hash_salt) % len(reduced)
    return SelectionOutcome(chosen=reduced[index], reduced_set=reduced, all_congested=False)
