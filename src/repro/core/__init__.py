"""LCMP core: the paper's primary contribution.

* :class:`~repro.core.config.LCMPConfig` — every weight/shift/threshold.
* :mod:`~repro.core.path_quality` — Alg. 1 / Alg. 2 / Eq. 2 (C_path).
* :mod:`~repro.core.congestion` — the on-switch Q/T/D estimator (C_cong).
* :mod:`~repro.core.cost_fusion` — Eq. 1 (fused cost).
* :mod:`~repro.core.selection` — filter + diversity-preserving hash.
* :mod:`~repro.core.flow_cache` — bounded flow2output mapping + GC.
* :mod:`~repro.core.control_plane` — slow-path provisioning.
* :class:`~repro.core.lcmp_router.LCMPRouter` — the full data-plane pipeline
  (registered in the router registry as ``"lcmp"``).
* :mod:`~repro.core.resource_model` — the §4 resource accounting.
"""

from .config import LCMPConfig
from .congestion import CongestionEstimator, PortCongestionState
from .control_plane import ControlPlane, lcmp_router_factory
from .cost_fusion import PathCost, fuse_cost, score_candidates
from .failover import PortLivenessTracker
from .flow_cache import FlowCache, FlowCacheEntry
from .lcmp_router import LCMPRouter
from .path_quality import (
    calc_delay_cost,
    calc_link_cap_cost,
    candidate_path_quality,
    path_quality_score,
)
from .resource_model import (
    PER_FLOW_BYTES,
    PER_PORT_BYTES,
    ResourceEstimate,
    estimate,
    flow_cache_bytes,
    per_new_flow_ops,
    port_cache_bytes,
)
from .selection import SelectionOutcome, filter_candidates, select_path
from .switch_tables import SwitchTables, lookup_level

__all__ = [
    "LCMPConfig",
    "CongestionEstimator",
    "PortCongestionState",
    "ControlPlane",
    "lcmp_router_factory",
    "PathCost",
    "fuse_cost",
    "score_candidates",
    "PortLivenessTracker",
    "FlowCache",
    "FlowCacheEntry",
    "LCMPRouter",
    "calc_delay_cost",
    "calc_link_cap_cost",
    "candidate_path_quality",
    "path_quality_score",
    "ResourceEstimate",
    "estimate",
    "flow_cache_bytes",
    "port_cache_bytes",
    "per_new_flow_ops",
    "PER_FLOW_BYTES",
    "PER_PORT_BYTES",
    "SelectionOutcome",
    "filter_candidates",
    "select_path",
    "SwitchTables",
    "lookup_level",
]
