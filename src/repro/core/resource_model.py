"""Resource-cost accounting (paper §4).

The paper argues LCMP is practical on modern DCI switches by accounting for
its working set and per-new-flow compute: 24 B of registers per port, 20 B
per flow-cache entry, roughly 1.2 MB for a 48-port switch with a 50 k-entry
flow cache, and about a hundred integer primitives per new-flow decision.
This module reproduces that accounting so the §4 numbers can be regenerated
(and asserted) from code.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PER_PORT_BYTES",
    "PER_FLOW_BYTES",
    "ResourceEstimate",
    "per_port_bytes",
    "per_flow_bytes",
    "port_cache_bytes",
    "flow_cache_bytes",
    "control_table_bytes",
    "per_new_flow_ops",
    "estimate",
]

#: 32-bit registers: queueCur, queuePrev, trend, durCnt (4 B each) plus a
#: 64-bit lastSample timestamp
PER_PORT_BYTES = 4 + 4 + 4 + 4 + 8
#: 64-bit flowId + 32-bit portIdx + 64-bit lastSeen
PER_FLOW_BYTES = 8 + 4 + 8


def per_port_bytes() -> int:
    """Register bytes needed per monitored egress port (24 B)."""
    return PER_PORT_BYTES


def per_flow_bytes() -> int:
    """Bytes needed per flow-cache entry (20 B)."""
    return PER_FLOW_BYTES


def port_cache_bytes(num_ports: int) -> int:
    """Total port-register footprint for ``num_ports`` ports."""
    if num_ports < 0:
        raise ValueError("num_ports must be non-negative")
    return PER_PORT_BYTES * num_ports


def flow_cache_bytes(num_entries: int) -> int:
    """Total flow-cache footprint for ``num_entries`` entries."""
    if num_entries < 0:
        raise ValueError("num_entries must be non-negative")
    return PER_FLOW_BYTES * num_entries


def control_table_bytes(num_classes: int = 10, num_paths: int = 0) -> int:
    """Footprint of the bootstrap vectors plus the per-path C_path table.

    The threshold vectors hold ``num_classes`` 32-bit entries each (capacity,
    queue, trend) plus one byte per level score; the per-path table stores
    one byte per installed path.
    """
    if num_classes < 0 or num_paths < 0:
        raise ValueError("counts must be non-negative")
    vectors = 3 * num_classes * 4 + num_classes
    return vectors + num_paths


def per_new_flow_ops(num_candidates: int, per_candidate_primitives: int = 15) -> int:
    """Integer primitives needed for one new-flow decision (paper §4).

    ``per_candidate_primitives`` covers the 2–4 table lookups, the 8–12
    adds/shifts of the score computation and the comparisons that form the
    sort keys; a conservative sorting cost of ``m * log2(m)`` comparisons is
    added on top.
    """
    if num_candidates <= 0:
        raise ValueError("num_candidates must be positive")
    m = num_candidates
    sort_cost = round(m * (m.bit_length() - 1 + (0 if m & (m - 1) == 0 else 1)))
    if m > 1:
        import math

        sort_cost = round(m * math.log2(m))
    else:
        sort_cost = 0
    return per_candidate_primitives * m + sort_cost


@dataclass(frozen=True)
class ResourceEstimate:
    """A full §4-style accounting for one switch configuration."""

    num_ports: int
    flow_cache_entries: int
    num_classes: int
    num_paths: int
    port_bytes: int
    flow_bytes: int
    table_bytes: int

    @property
    def total_bytes(self) -> int:
        """Total on-switch working set in bytes."""
        return self.port_bytes + self.flow_bytes + self.table_bytes

    @property
    def total_megabytes(self) -> float:
        """Total working set in MB (decimal, as quoted in the paper)."""
        return self.total_bytes / 1e6


def estimate(
    num_ports: int = 48,
    flow_cache_entries: int = 50_000,
    num_classes: int = 10,
    num_paths: int = 10_000,
) -> ResourceEstimate:
    """The paper's example deployment: 48 ports, 50 k flows, 10 k paths."""
    return ResourceEstimate(
        num_ports=num_ports,
        flow_cache_entries=flow_cache_entries,
        num_classes=num_classes,
        num_paths=num_paths,
        port_bytes=port_cache_bytes(num_ports),
        flow_bytes=flow_cache_bytes(flow_cache_entries),
        table_bytes=control_table_bytes(num_classes, num_paths),
    )
