"""Bounded per-switch flow cache (flow2output mapping, paper §3.1.2 step 4).

Per-flow path consistency is what keeps RDMA traffic in order: only the
*first* packet of a flow runs the full cost computation; every later packet
hits this cache, refreshes its ``lastSeen`` timestamp and is forwarded on the
recorded egress.  The cache is bounded (the paper sizes 50 k entries at 20 B
each ≈ 1.2 MB (together with port state); see :mod:`repro.core.resource_model`) and a periodic
garbage collection evicts entries idle longer than a configured timeout.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

__all__ = ["FlowCacheEntry", "FlowCache"]


@dataclass
class FlowCacheEntry:
    """One flow2output record: chosen egress + last-seen timestamp."""

    flow_id: int
    out_port: str
    last_seen_s: float


class FlowCache:
    """Bounded mapping from flow id to chosen egress port.

    Eviction policy: explicit garbage collection by idle timeout (the
    paper's mechanism) plus least-recently-seen eviction when an insert
    would exceed the bounded capacity.
    """

    def __init__(self, capacity: int = 50_000, idle_timeout_s: float = 1.0) -> None:
        """Create a cache.

        Args:
            capacity: maximum number of simultaneous entries.
            idle_timeout_s: entries idle longer than this are evicted by
                :meth:`garbage_collect`.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        self.capacity = capacity
        self.idle_timeout_s = idle_timeout_s
        self._entries: "OrderedDict[int, FlowCacheEntry]" = OrderedDict()
        # statistics (useful for tests and the resource analysis)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.gc_evictions = 0

    # ------------------------------------------------------------------ #
    def lookup(self, flow_id: int, now: float) -> Optional[FlowCacheEntry]:
        """Look up a flow; refreshes ``lastSeen`` on a hit."""
        entry = self._entries.get(flow_id)
        if entry is None:
            self.misses += 1
            return None
        entry.last_seen_s = now
        self._entries.move_to_end(flow_id)
        self.hits += 1
        return entry

    def insert(self, flow_id: int, out_port: str, now: float) -> FlowCacheEntry:
        """Insert (or overwrite) the mapping for a flow.

        When the cache is full the least-recently-seen entry is evicted to
        make room (bounded state, paper §3.1.2).
        """
        if flow_id in self._entries:
            entry = self._entries[flow_id]
            entry.out_port = out_port
            entry.last_seen_s = now
            self._entries.move_to_end(flow_id)
            return entry
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        entry = FlowCacheEntry(flow_id=flow_id, out_port=out_port, last_seen_s=now)
        self._entries[flow_id] = entry
        return entry

    def invalidate(self, flow_id: int) -> bool:
        """Drop one entry (used by data-plane fast-failover); True if present."""
        return self._entries.pop(flow_id, None) is not None

    def garbage_collect(self, now: float) -> int:
        """Evict every entry idle for longer than the timeout.

        Returns:
            Number of entries evicted.
        """
        stale = [
            flow_id
            for flow_id, entry in self._entries.items()
            if now - entry.last_seen_s > self.idle_timeout_s
        ]
        for flow_id in stale:
            del self._entries[flow_id]
        self.gc_evictions += len(stale)
        return len(stale)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._entries

    @property
    def occupancy(self) -> float:
        """Fraction of the bounded capacity currently used."""
        return len(self._entries) / self.capacity

    def entries(self) -> list:
        """Snapshot of all entries (for telemetry / tests)."""
        return list(self._entries.values())
