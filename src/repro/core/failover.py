"""Data-plane fast-failover (paper §3.4, "Fault tolerance").

LCMP handles link/port failures entirely in the data plane: the switch
tracks port liveness in real time, and when a packet matches a flow-cache
entry that points at a failed port the entry is invalidated *lazily* — the
packet is treated as the first packet of a new flow and re-hashed onto a
healthy candidate.  There is no control-plane batch update of thousands of
entries; invalid entries are overwritten one by one as their packets arrive,
giving microsecond-scale recovery with zero instantaneous control-plane
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

__all__ = ["PortLivenessTracker"]


@dataclass
class PortLivenessTracker:
    """Tracks egress-port liveness and failover statistics."""

    _down: Set[str] = field(default_factory=set)
    #: number of flow-cache entries lazily invalidated because their port died
    lazy_invalidations: int = 0

    def mark_down(self, port: str) -> None:
        """Record that ``port`` failed."""
        self._down.add(port)

    def mark_up(self, port: str) -> None:
        """Record that ``port`` recovered."""
        self._down.discard(port)

    def is_up(self, port: str) -> bool:
        """Liveness of ``port`` (unknown ports are considered up)."""
        return port not in self._down

    def observe(self, port: str, up: bool) -> None:
        """Update liveness from a monitor sample."""
        if up:
            self.mark_up(port)
        else:
            self.mark_down(port)

    def record_lazy_invalidation(self) -> None:
        """Count one lazy flow-cache invalidation caused by a dead port."""
        self.lazy_invalidations += 1

    @property
    def down_ports(self) -> Set[str]:
        """Snapshot of the currently failed ports."""
        return set(self._down)
