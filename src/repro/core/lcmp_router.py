"""The LCMP data-plane router: the full per-flow decision pipeline (paper §3).

For the first packet of a new flow the switch

1. refreshes the congestion state of every candidate egress port (done
   continuously by the queue monitor feeding :class:`CongestionEstimator`),
2. looks up the precomputed path-quality score C_path of each candidate (or,
   when the control plane has not installed it, derives it on demand from
   the candidate's static attributes — the paper's on-demand table creation),
3. fuses the two into the weighted cost C(p) = alpha*C_path + beta*C_cong,
4. filters the high-cost suffix and performs a diversity-preserving hash
   inside the reduced set, and
5. records the chosen egress in the bounded flow cache so subsequent packets
   follow the same path (per-flow stickiness; garbage-collected when idle).

Port failures are handled lazily: a cached entry pointing at a dead port is
invalidated on the fly and the flow is re-hashed onto a healthy candidate.
When no tables are available at all the router falls back to plain ECMP
(paper §5, safe fallbacks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..routing.base import Router, flow_hash, flow_hash_array, register_router
from ..simulator.flow import FlowDemand
from ..simulator.switch import PortSample
from ..topology.paths import CandidatePath
from .config import LCMPConfig
from .congestion import CongestionEstimator
from .control_plane import PathKey
from .cost_fusion import PathCost, score_candidates
from .failover import PortLivenessTracker
from .flow_cache import FlowCache
from .path_quality import candidate_path_quality
from .selection import SelectionOutcome, filter_candidates, select_path
from .switch_tables import SwitchTables

__all__ = ["LCMPRouter"]


@register_router
class LCMPRouter(Router):
    """Distributed long-haul cost-aware multi-path router (one per DCI switch)."""

    name = "lcmp"

    def __init__(self, config: Optional[LCMPConfig] = None) -> None:
        super().__init__()
        self.config = config or LCMPConfig()
        self.config.validate()

        self.tables: Optional[SwitchTables] = None
        self._path_scores: Dict[PathKey, int] = {}
        self.estimator: Optional[CongestionEstimator] = None
        self.flow_cache = FlowCache(
            capacity=self.config.flow_cache_capacity,
            idle_timeout_s=self.config.flow_idle_timeout_s,
        )
        self.liveness = PortLivenessTracker()

        # decision statistics
        self.ecmp_fallbacks = 0
        self.herd_fallbacks = 0
        self.sticky_hits = 0
        self.failover_rehashes = 0
        self.last_outcome: Optional[SelectionOutcome] = None

    # ------------------------------------------------------------------ #
    # control-plane installation
    # ------------------------------------------------------------------ #
    def install_tables(self, tables: SwitchTables, path_scores: Dict[PathKey, int]) -> None:
        """Install bootstrap tables and precomputed C_path scores."""
        self.tables = tables
        self._path_scores = dict(path_scores)
        self.estimator = CongestionEstimator(tables, self.config)

    @property
    def installed(self) -> bool:
        """True once the control plane has provisioned this switch."""
        return self.tables is not None

    # ------------------------------------------------------------------ #
    # telemetry hooks
    # ------------------------------------------------------------------ #
    def on_port_sample(self, sample: PortSample, now: float) -> None:
        """Refresh congestion state (step 1 of the decision pipeline)."""
        self._observe_port(
            sample.next_dc,
            sample.up,
            sample.queue_bytes,
            sample.cap_bps,
            sample.buffer_bytes,
            now,
        )

    def on_telemetry(self, view, now: float) -> None:
        """Columnar sweep delivery: identical per-port register updates
        straight from the telemetry columns, no sample objects built."""
        ups = view.up.tolist()
        queues = view.queue_bytes.tolist()
        caps = view.cap_bps.tolist()
        buffers = view.buffer_bytes.tolist()
        for i, port in enumerate(view.port_dcs):
            self._observe_port(port, ups[i], queues[i], caps[i], buffers[i], now)

    def _observe_port(
        self,
        port: str,
        up: bool,
        queue_bytes: float,
        cap_bps: float,
        buffer_bytes: float,
        now: float,
    ) -> None:
        self.liveness.observe(port, up)
        if self.estimator is None:
            # the switch has not been provisioned yet; bootstrap minimal
            # tables from what the monitor tells us (on-demand creation)
            self.tables = SwitchTables.bootstrap(
                config=self.config,
                max_capacity_bps=max(cap_bps, 1.0),
                buffer_bytes=max(buffer_bytes, 1.0),
            )
            self.estimator = CongestionEstimator(self.tables, self.config)
        self.estimator.observe(port, queue_bytes, cap_bps, now)

    def on_tick(self, now: float) -> None:
        """Periodic garbage collection of the flow cache."""
        self.flow_cache.garbage_collect(now)

    # ------------------------------------------------------------------ #
    # the per-flow decision
    # ------------------------------------------------------------------ #
    def select(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Full LCMP decision for the first packet of a flow."""
        self.decisions += 1

        # flow identification: established flows follow the cached egress
        cached = self.flow_cache.lookup(demand.flow_id, now)
        if cached is not None:
            if self.liveness.is_up(cached.out_port):
                sticky = self._candidate_via(candidates, cached.out_port)
                if sticky is not None:
                    self.sticky_hits += 1
                    return sticky
            else:
                # lazy fast-failover: invalidate and treat as a new flow
                self.flow_cache.invalidate(demand.flow_id)
                self.liveness.record_lazy_invalidation()
                self.failover_rehashes += 1

        if not self.installed:
            # safe fallback: behave exactly like ECMP until provisioned
            self.ecmp_fallbacks += 1
            chosen = candidates[flow_hash(demand.flow_id, self.config.hash_salt) % len(candidates)]
            self.flow_cache.insert(demand.flow_id, chosen.first_hop, now)
            return chosen

        costs = self._cost_candidates(candidates)
        outcome = select_path(costs, demand.flow_id, self.config)
        self.last_outcome = outcome
        if outcome.all_congested:
            self.herd_fallbacks += 1
        chosen = outcome.chosen.candidate
        self.flow_cache.insert(demand.flow_id, chosen.first_hop, now)
        return chosen

    def select_batch(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demands: Sequence[FlowDemand],
        times: Optional[Sequence[float]] = None,
        now: float = 0.0,
        path_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Batched LCMP decision, identical per flow to :meth:`select`.

        The expensive pipeline stages are flow-independent: candidate cost
        fusion, the herd filter and the reduced-set construction run *once*
        per batch, and only the per-flow pieces remain sequential — the
        flow-identification cache pass and the diversity-preserving hash,
        which is one vectorized :func:`flow_hash_array` over the reduced
        set.  The fast path requires that the batch cannot interact with
        the flow cache's LRU state (the simulator's arrival batches carry
        fresh unique ids, so lookups all miss and inserts cannot evict);
        when a batched flow is already cached, or inserting the batch
        could evict, the cache pass and the selection would interleave
        differently than ``select``'s per-flow order — those batches
        take the generic sequential loop instead, which is identical by
        construction.
        """
        n = len(demands)
        cache = self.flow_cache
        if len(cache) + n > cache.capacity or any(d.flow_id in cache for d in demands):
            return Router.select_batch(self, dst_dc, candidates, demands, times, now)
        times_l = (
            [float(now)] * n if times is None else np.asarray(times, dtype=np.float64).tolist()
        )
        positions = {id(c): j for j, c in enumerate(candidates)}
        self.decisions += n
        for i, demand in enumerate(demands):
            # guaranteed miss (guard above); keeps the miss counter exact
            self.flow_cache.lookup(demand.flow_id, times_l[i])
        ids = np.fromiter(
            (d.flow_id for d in demands), dtype=np.int64, count=n
        )

        if not self.installed:
            # safe fallback: behave exactly like ECMP until provisioned
            self.ecmp_fallbacks += n
            chosen_idx = (
                flow_hash_array(ids, self.config.hash_salt) % len(candidates)
            ).astype(np.intp)
        else:
            costs = self._cost_candidates(candidates)
            all_congested = all(
                c.congestion >= self.config.congested_threshold for c in costs
            )
            if all_congested:
                self.herd_fallbacks += n
                best = min(costs, key=lambda c: (c.fused, c.candidate.dcs))
                self.last_outcome = SelectionOutcome(
                    chosen=best, reduced_set=[best], all_congested=True
                )
                chosen_idx = np.full(n, positions[id(best.candidate)], dtype=np.intp)
            else:
                reduced = filter_candidates(costs, self.config.keep_fraction)
                reduced_to_candidate = np.fromiter(
                    (positions[id(c.candidate)] for c in reduced),
                    dtype=np.intp,
                    count=len(reduced),
                )
                inner = (
                    flow_hash_array(ids, self.config.hash_salt) % len(reduced)
                ).astype(np.intp)
                chosen_idx = self.backend.gather_rows(reduced_to_candidate, inner)
                self.last_outcome = SelectionOutcome(
                    chosen=reduced[int(inner[-1])],
                    reduced_set=reduced,
                    all_congested=False,
                )

        chosen_l = chosen_idx.tolist()
        for i, demand in enumerate(demands):
            self.flow_cache.insert(demand.flow_id, candidates[chosen_l[i]].first_hop, times_l[i])
        return chosen_idx

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _candidate_via(
        self, candidates: Sequence[CandidatePath], next_hop: str
    ) -> Optional[CandidatePath]:
        for candidate in candidates:
            if candidate.first_hop == next_hop:
                return candidate
        return None

    def _cost_candidates(self, candidates: Sequence[CandidatePath]) -> List[PathCost]:
        path_scores = [self._path_quality_of(c) for c in candidates]
        congestion_scores = [self._congestion_of(c) for c in candidates]
        return score_candidates(candidates, path_scores, congestion_scores, self.config)

    def _path_quality_of(self, candidate: CandidatePath) -> int:
        key: PathKey = (candidate.dst, candidate.dcs)
        score = self._path_scores.get(key)
        if score is None:
            # on-demand derivation when the control plane table lacks the
            # entry (e.g. a path installed after bootstrap)
            score = candidate_path_quality(candidate, self.tables, self.config)
            self._path_scores[key] = score
        return score

    def _congestion_of(self, candidate: CandidatePath) -> int:
        if self.estimator is None:
            return 0
        return self.estimator.congestion_score(candidate.first_hop)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Decision statistics (used by tests and the experiment reports)."""
        return {
            "decisions": self.decisions,
            "ecmp_fallbacks": self.ecmp_fallbacks,
            "herd_fallbacks": self.herd_fallbacks,
            "sticky_hits": self.sticky_hits,
            "failover_rehashes": self.failover_rehashes,
            "flow_cache_entries": len(self.flow_cache),
            "flow_cache_hits": self.flow_cache.hits,
            "flow_cache_misses": self.flow_cache.misses,
        }
