"""Control-plane path-quality score C_path (paper §3.2, Alg. 1, Alg. 2, Eq. 2).

The path-quality score compresses the slowly varying attributes of a
candidate route — one-way propagation delay and provisioned (bottleneck)
capacity — into a single byte the data plane can compare at line rate.  All
arithmetic is integer-only with right-shift normalisation, exactly as in the
paper so the score could be installed on a programmable switch verbatim.
"""

from __future__ import annotations

from typing import Sequence

from ..topology.paths import CandidatePath
from .config import LCMPConfig
from .switch_tables import SwitchTables

__all__ = [
    "calc_delay_cost",
    "calc_link_cap_cost",
    "path_quality_score",
    "candidate_path_quality",
]


def calc_delay_cost(one_way_delay_ms: float, max_delay_ms: int = 32) -> int:
    """Algorithm 1: saturating, shift-based mapping from delay to delayScore.

    Args:
        one_way_delay_ms: the path's one-way propagation delay in ms.
        max_delay_ms: configured saturation point; must be a power of two so
            the division is a right shift.

    Returns:
        delayScore in [0, 255]; delays at or beyond the saturation point map
        to 255 (the worst score).
    """
    if max_delay_ms <= 0 or max_delay_ms & (max_delay_ms - 1):
        raise ValueError("max_delay_ms must be a positive power of two")
    if one_way_delay_ms < 0:
        raise ValueError("delay must be non-negative")
    if one_way_delay_ms >= max_delay_ms:
        return 255
    shift = max_delay_ms.bit_length() - 1
    # integer arithmetic: (delay * 255) >> shift  ==  delay * 255 / max_delay
    return min(255, (int(one_way_delay_ms) * 255) >> shift)


def calc_link_cap_cost(
    link_cap_bps: float,
    link_cap_thresholds: Sequence[float],
    level_scores: Sequence[int],
) -> int:
    """Algorithm 2: capacity-class lookup mapping link capacity to a cost.

    Scans the threshold vector from the highest class downward and returns
    ``255 - levelScore[class]`` so that higher capacity yields a smaller
    cost.  Capacities below every threshold return 255 (worst).

    Args:
        link_cap_bps: the candidate's provisioned (bottleneck) capacity.
        link_cap_thresholds: increasing class boundaries.
        level_scores: 0–255 score per class.

    Returns:
        linkCapScore in [0, 255].
    """
    if len(link_cap_thresholds) != len(level_scores):
        raise ValueError("thresholds and level scores must have the same length")
    for i in range(len(link_cap_thresholds) - 1, -1, -1):
        if link_cap_bps >= link_cap_thresholds[i]:
            return max(0, 255 - level_scores[i])
    return 255


def path_quality_score(
    delay_score: int,
    link_cap_score: int,
    config: LCMPConfig,
) -> int:
    """Equation 2: fuse delayScore and linkCapScore into C_path.

    ``pathScore = w_dl * delayScore + w_lc * linkCapScore`` followed by a
    right shift and saturation at 255.
    """
    if not 0 <= delay_score <= 255 or not 0 <= link_cap_score <= 255:
        raise ValueError("component scores must be in [0, 255]")
    path_score = config.w_dl * delay_score + config.w_lc * link_cap_score
    return min(path_score >> config.path_shift, 255)


def candidate_path_quality(
    candidate: CandidatePath,
    tables: SwitchTables,
    config: LCMPConfig,
) -> int:
    """C_path of a candidate route, from its static attributes.

    The delay component uses the candidate's end-to-end one-way propagation
    delay; the capacity component uses its bottleneck capacity (on single
    inter-DC-hop routes this is exactly the egress link capacity of Alg. 2).
    """
    delay_score = calc_delay_cost(candidate.delay_s * 1e3, config.max_delay_ms)
    cap_score = calc_link_cap_cost(
        candidate.bottleneck_bps, tables.link_cap_thresholds, tables.level_scores
    )
    return path_quality_score(delay_score, cap_score, config)
