"""Bootstrap tables installed on a DCI switch (paper §3.1.2, Fig. 3).

At switch initialisation the control plane installs a small set of vectors
that let the data plane do all of its work with lookups and integer
comparisons:

* **link-capacity thresholds** — ``N`` class boundaries proportional to a
  configured maximum capacity; map a link rate to a capacity class.
* **queue thresholds** — the per-port egress buffer divided into ``N``
  levels; map instantaneous queue bytes to a quantised level ``Q``.
* **level-score table** — a linear mapping from level index to a 0–255
  score, avoiding per-packet floating arithmetic.
* **trend thresholds** — per link-rate bucket, normalisation vectors that
  map the raw trend accumulator to a trend level ``T``.  Buckets absent at
  initialisation are created on demand from the link rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .config import LCMPConfig

__all__ = ["SwitchTables", "lookup_level"]


def lookup_level(value: float, thresholds: Sequence[float]) -> int:
    """Largest level index whose threshold is not above ``value``.

    The thresholds are increasing with ``thresholds[0] == 0`` so the result
    is always a valid index.
    """
    level = 0
    for i, threshold in enumerate(thresholds):
        if value >= threshold:
            level = i
        else:
            break
    return level


@dataclass
class SwitchTables:
    """The per-switch lookup vectors of Fig. 3."""

    config: LCMPConfig
    #: reference maximum link capacity used for the capacity classes (bps)
    max_capacity_bps: float
    #: per-port buffer size used for the queue thresholds (bytes)
    buffer_bytes: float
    link_cap_thresholds: List[float] = field(default_factory=list)
    queue_thresholds: List[float] = field(default_factory=list)
    level_scores: List[int] = field(default_factory=list)
    #: trend thresholds per coarse link-rate bucket (keyed by bps)
    trend_thresholds: Dict[float, List[float]] = field(default_factory=dict)
    #: sampling interval the trend thresholds were normalised for (seconds)
    trend_interval_s: float = 1e-3

    # ------------------------------------------------------------------ #
    @classmethod
    def bootstrap(
        cls,
        config: LCMPConfig,
        max_capacity_bps: float,
        buffer_bytes: float,
        link_rates_bps: Sequence[float] = (),
        trend_interval_s: float = 1e-3,
    ) -> "SwitchTables":
        """Generate all tables, as the control plane does at switch init.

        Args:
            config: LCMP configuration (defines the number of levels).
            max_capacity_bps: the largest provisioned capacity the switch
                will ever see (e.g. 400 Gbps); class boundaries are
                proportional to it.
            buffer_bytes: per-port egress buffer capacity.
            link_rates_bps: rate buckets to pre-install trend tables for
                (missing buckets are created on demand later).
            trend_interval_s: monitor sampling interval used to normalise
                the trend accumulator.
        """
        config.validate()
        if max_capacity_bps <= 0:
            raise ValueError("max_capacity_bps must be positive")
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        n = config.num_levels
        tables = cls(
            config=config,
            max_capacity_bps=float(max_capacity_bps),
            buffer_bytes=float(buffer_bytes),
            link_cap_thresholds=[max_capacity_bps * i / n for i in range(n)],
            queue_thresholds=[buffer_bytes * i / n for i in range(n)],
            level_scores=[(i * 255) // n for i in range(n)],
            trend_interval_s=float(trend_interval_s),
        )
        for rate in link_rates_bps:
            tables.trend_thresholds_for(rate)
        return tables

    # ------------------------------------------------------------------ #
    # lookups the data plane performs
    # ------------------------------------------------------------------ #
    def queue_level(self, queue_bytes: float) -> int:
        """Quantised queue level ``Q`` for an instantaneous byte count."""
        return lookup_level(queue_bytes, self.queue_thresholds)

    def level_score(self, level: int) -> int:
        """0–255 score for a level index (saturating at the top level)."""
        level = max(0, min(level, len(self.level_scores) - 1))
        return self.level_scores[level]

    def capacity_level(self, cap_bps: float) -> int:
        """Capacity class index for a provisioned link rate."""
        return lookup_level(cap_bps, self.link_cap_thresholds)

    def trend_thresholds_for(self, rate_bps: float) -> List[float]:
        """Trend-normalisation vector for a link-rate bucket.

        The vector expresses "how many bytes of queue growth per sampling
        interval" each trend level corresponds to, proportional to the rate
        bucket: level ``i`` starts at ``i/N`` of the bytes a full-rate burst
        could add to the queue during one sampling interval.  Buckets not
        present at initialisation are created on demand (paper §3.1.2).
        """
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        bucket = self._rate_bucket(rate_bps)
        if bucket not in self.trend_thresholds:
            n = self.config.num_levels
            max_growth_bytes = bucket * self.trend_interval_s / 8.0
            self.trend_thresholds[bucket] = [
                max_growth_bytes * i / n for i in range(n)
            ]
        return self.trend_thresholds[bucket]

    def trend_level(self, trend_bytes: float, rate_bps: float, interval_s: float | None = None) -> int:
        """Trend level ``T`` for a raw trend accumulator value.

        Args:
            trend_bytes: the shift-EWMA trend accumulator (bytes per sample).
            rate_bps: the port's link rate (selects the threshold bucket).
            interval_s: observed sampling interval; when it differs from the
                interval the table was built for, the accumulator is rescaled
                (the robustness-to-cadence property of §3.3).
        """
        if trend_bytes <= 0:
            return 0
        thresholds = self.trend_thresholds_for(rate_bps)
        if interval_s and interval_s > 0 and interval_s != self.trend_interval_s:
            trend_bytes = trend_bytes * (self.trend_interval_s / interval_s)
        return lookup_level(trend_bytes, thresholds)

    # ------------------------------------------------------------------ #
    def _rate_bucket(self, rate_bps: float) -> float:
        """Round a rate to its coarse bucket (25/40/100/200/400 G, etc.)."""
        standard = [25e9, 40e9, 50e9, 100e9, 200e9, 400e9, 800e9]
        for bucket in standard:
            if rate_bps <= bucket * 1.01:
                return bucket
        return rate_bps

    def memory_bytes(self) -> int:
        """Approximate control-table footprint in bytes (paper §4)."""
        vector_entries = (
            len(self.link_cap_thresholds)
            + len(self.queue_thresholds)
            + sum(len(v) for v in self.trend_thresholds.values())
        )
        return vector_entries * 4 + len(self.level_scores)
