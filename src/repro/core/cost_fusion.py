"""Fused per-path cost C(p) = alpha * C_path + beta * C_cong (paper Eq. 1).

The fusion is the heart of LCMP: the slowly varying control-plane view of a
path (propagation delay + provisioned capacity) and the switch's own timely
congestion estimate are combined with small integer weights into a single
comparable cost.  The ablation study (§7.1) shows both terms are necessary —
``alpha = 0`` places flows on high-delay routes, ``beta = 0`` cannot prevent
contention among long-lived elephants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..topology.paths import CandidatePath
from .config import LCMPConfig

__all__ = ["PathCost", "fuse_cost", "score_candidates"]


@dataclass(frozen=True)
class PathCost:
    """The fused cost of one candidate path and its components."""

    candidate: CandidatePath
    path_quality: int
    congestion: int
    fused: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{'->'.join(self.candidate.dcs)}: C={self.fused} "
            f"(Cpath={self.path_quality}, Ccong={self.congestion})"
        )


def fuse_cost(path_quality: int, congestion: int, config: LCMPConfig) -> int:
    """Equation 1: integer-weighted sum of the two cost terms.

    The result is *not* re-normalised to 0–255 — it is only ever compared
    against other fused costs computed with the same weights, so keeping the
    full integer range preserves resolution.
    """
    if not 0 <= path_quality <= 255:
        raise ValueError("path_quality must be in [0, 255]")
    if not 0 <= congestion <= 255:
        raise ValueError("congestion must be in [0, 255]")
    return config.alpha * path_quality + config.beta * congestion


def score_candidates(
    candidates: Sequence[CandidatePath],
    path_quality_scores: Sequence[int],
    congestion_scores: Sequence[int],
    config: LCMPConfig,
) -> List[PathCost]:
    """Fuse the per-candidate scores into a list of :class:`PathCost`.

    Args:
        candidates: the candidate routes.
        path_quality_scores: C_path per candidate (same order).
        congestion_scores: C_cong per candidate (same order).
        config: the weight configuration.

    Raises:
        ValueError: when the three sequences disagree in length.
    """
    if not (len(candidates) == len(path_quality_scores) == len(congestion_scores)):
        raise ValueError("candidates and score lists must have equal length")
    costs = []
    for candidate, c_path, c_cong in zip(candidates, path_quality_scores, congestion_scores):
        costs.append(
            PathCost(
                candidate=candidate,
                path_quality=c_path,
                congestion=c_cong,
                fused=fuse_cost(c_path, c_cong, config),
            )
        )
    return costs
