"""The 13-DC Europe-spanning topology (paper Fig. 4b, "BSONetwork").

The paper's large-scale simulations use the BSO Network Solutions topology
from the Internet Topology Zoo: 13 datacenters across Europe connected by a
sparse partial mesh of backbone, customer and transit links.  The Zoo graph
itself ships as GraphML with geographic coordinates but without capacities;
the paper assigns inter-DC propagation delays of 1 ms (~200 km), 5 ms
(~1000 km) and 10 ms (~2000 km) and heterogeneous capacities (tens to
hundreds of Gbps), and provisions deep (multi-GB) switch buffers for PFC
headroom over the long spans.

We embed an adjacency that preserves the properties the evaluation depends
on (documented substitution — see DESIGN.md):

* 13 DCs, sparse and irregular: most DC pairs have a single candidate route,
  so system-wide gains are diluted (paper reports 25.6 % multipath pairs).
* the studied pair (DC1, DC13) spans the whole continent and has several
  candidate routes with distinct delay/capacity trade-offs.
* link delays drawn from {1 ms, 5 ms, 10 ms} and capacities from
  {40, 100, 200} Gbps.
"""

from __future__ import annotations

from typing import List, Tuple

from .graph import GBPS, MS, Topology
from .paths import PathSet

__all__ = ["BSO_EDGES", "build_bso13", "bso13_pathset"]

#: undirected edge list: (dc_a, dc_b, capacity Gbps, one-way delay ms)
BSO_EDGES: List[Tuple[int, int, float, float]] = [
    (1, 2, 200, 1),
    (1, 3, 100, 1),
    (2, 4, 200, 5),
    (3, 4, 100, 1),
    (3, 5, 100, 5),
    (4, 6, 200, 5),
    (5, 6, 100, 1),
    (6, 7, 200, 1),
    (6, 8, 100, 5),
    (7, 9, 200, 5),
    (8, 9, 40, 1),
    (8, 10, 100, 5),
    (9, 11, 200, 5),
    (10, 11, 100, 1),
    (9, 12, 100, 10),
    (11, 13, 100, 5),
    (12, 13, 200, 10),
    (2, 7, 100, 10),
    (5, 10, 100, 10),
]

#: the paper provisions ~6 GB buffers on long-haul links for PFC headroom
INTER_DC_BUFFER_BYTES = 6 * 1024 * 1024 * 1024


def build_bso13(
    hosts_per_dc: int = 16,
    nic_bps: float = 100 * GBPS,
    inter_dc_buffer_bytes: int = INTER_DC_BUFFER_BYTES,
    capacity_scale: float = 1.0,
) -> Topology:
    """Build the 13-DC BSONetwork-style topology.

    Args:
        hosts_per_dc: servers attached to each datacenter.
        nic_bps: host NIC rate.
        inter_dc_buffer_bytes: egress buffer on inter-DC links.
        capacity_scale: multiply every capacity and buffer by this factor
            (time-scaled fluid experiments; see
            :func:`repro.topology.testbed8.build_testbed8`).

    Returns:
        A validated :class:`~repro.topology.graph.Topology` named
        ``"bso-13dc"`` with DCs ``DC1`` .. ``DC13``.
    """
    if capacity_scale <= 0:
        raise ValueError("capacity_scale must be positive")
    topo = Topology("bso-13dc")
    for i in range(1, 14):
        topo.add_dc(f"DC{i}")

    buffer_bytes = max(1, int(inter_dc_buffer_bytes * capacity_scale))
    for a, b, cap_gbps, delay_ms in BSO_EDGES:
        topo.add_inter_dc_link(
            f"DC{a}",
            f"DC{b}",
            cap_bps=cap_gbps * GBPS * capacity_scale,
            delay_s=delay_ms * MS,
            buffer_bytes=buffer_bytes,
        )

    for dc in topo.dcs:
        topo.add_hosts(dc, count=hosts_per_dc, nic_bps=nic_bps * capacity_scale)

    topo.validate()
    return topo


def bso13_pathset(topology: Topology | None = None, lazy: bool = True) -> PathSet:
    """Candidate paths for the 13-DC topology.

    A detour bound of one extra hop keeps the graph in the sparse-multipath
    regime the paper describes (only a minority of pairs see more than one
    candidate) while still exposing several candidate routes between DC1 and
    DC13.

    ``lazy=False`` enumerates every pair up front (identical candidates
    and ids; kept for the lazy/eager equivalence suite).
    """
    topo = topology or build_bso13()
    return PathSet(topo, max_candidates=8, max_extra_hops=1, lazy=lazy)
