"""Inter-datacenter topology models and candidate-path enumeration.

Public entry points:

* :class:`~repro.topology.graph.Topology` — the topology data model.
* :func:`~repro.topology.testbed8.build_testbed8` — the 8-DC evaluation
  topology (paper Fig. 1a / 4a).
* :func:`~repro.topology.bso13.build_bso13` — the 13-DC Europe-spanning
  topology (paper Fig. 4b).
* :class:`~repro.topology.paths.PathSet` — candidate paths per DC pair.
"""

from .graph import (
    GBPS,
    MBPS,
    MS,
    POWER_REDUNDANCY_LEVELS,
    US,
    DCAttrs,
    HostGroup,
    LinkSpec,
    Node,
    NodeKind,
    Topology,
    TopologyError,
    power_redundancy_rank,
)
from .generators import CONTINENT_400, FabricSpec, build_fabric, fabric_pathset
from .index import TopologyIndex
from .leaf_spine import PodSpec, build_pod
from .paths import (
    CandidatePath,
    PathSet,
    PathView,
    enumerate_paths,
    shortest_delay_path,
)
from .testbed8 import DC_ATTR_PLAN, RELAY_PLAN, build_testbed8, testbed8_pathset
from .bso13 import BSO_EDGES, build_bso13, bso13_pathset

__all__ = [
    "GBPS",
    "MBPS",
    "MS",
    "US",
    "Topology",
    "TopologyError",
    "Node",
    "NodeKind",
    "LinkSpec",
    "HostGroup",
    "DCAttrs",
    "POWER_REDUNDANCY_LEVELS",
    "power_redundancy_rank",
    "DC_ATTR_PLAN",
    "PodSpec",
    "build_pod",
    "CandidatePath",
    "PathSet",
    "PathView",
    "TopologyIndex",
    "enumerate_paths",
    "shortest_delay_path",
    "FabricSpec",
    "CONTINENT_400",
    "build_fabric",
    "fabric_pathset",
    "RELAY_PLAN",
    "build_testbed8",
    "testbed8_pathset",
    "BSO_EDGES",
    "build_bso13",
    "bso13_pathset",
]
