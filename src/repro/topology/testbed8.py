"""The 8-DC evaluation topology (paper Fig. 1a / Fig. 4a).

Eight datacenters; DC1 and DC8 are the traffic endpoints and DC2..DC7 are
intermediate datacenters, each providing one two-hop candidate route between
DC1 and DC8.  The six candidate routes fall into three capacity classes
(2 x 200 Gbps, 2 x 100 Gbps, 2 x 40 Gbps) and each class contains one
low-delay and one high-delay route, reproducing the capacity-delay asymmetry
that motivates LCMP.

The exact per-route delay assignment is not spelled out in the paper beyond
the legend values (5, 10, 25, 50, 100, 250 ms) and the statement that the
testbed stresses a 50x delay gap (5 ms vs 250 ms); we use the assignment
below and document it here:

=====  =========  ================  ==========
Relay  Capacity   Per-link delay    Class
=====  =========  ================  ==========
DC2    200 Gbps   250 ms            high-cap / high-delay
DC3    200 Gbps   25 ms             high-cap / low-delay
DC4    100 Gbps   100 ms            mid-cap  / high-delay
DC5    100 Gbps   10 ms             mid-cap  / low-delay
DC6    40 Gbps    50 ms             low-cap  / high-delay
DC7    40 Gbps    5 ms              low-cap  / low-delay
=====  =========  ================  ==========

Each DC hosts a small leaf-spine pod in the paper (1 DCI, 2 spines, 4 leaves,
16 servers, 100 Gbps intra-DC links, 400 Gbps DCI-spine links).  For the
flow-level experiments the pod is condensed into a host group with a 100 Gbps
NIC rate and a few-microsecond access delay (the intra-DC fabric is never the
bottleneck by construction); :func:`build_testbed8` can optionally expand the
full pod via :mod:`repro.topology.leaf_spine` for structural tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .graph import GBPS, MS, Topology
from .leaf_spine import build_pod
from .paths import PathSet

__all__ = ["RELAY_PLAN", "DC_ATTR_PLAN", "build_testbed8", "testbed8_pathset"]

#: relay DC -> (capacity bps, per-link one-way delay seconds)
RELAY_PLAN: Dict[str, Tuple[float, float]] = {
    "DC2": (200 * GBPS, 250 * MS),
    "DC3": (200 * GBPS, 25 * MS),
    "DC4": (100 * GBPS, 100 * MS),
    "DC5": (100 * GBPS, 10 * MS),
    "DC6": (40 * GBPS, 50 * MS),
    "DC7": (40 * GBPS, 5 * MS),
}

#: DC -> (region, tier, power redundancy).  The paper does not assign
#: facility metadata, so we use a plausible west-to-east layout: the two
#: traffic endpoints are tier-4 facilities with duplicated power plants
#: (2N), relays are tier-3 with mixed redundancy.  Correlated-failure
#: scenarios (regional power events, tier-scoped maintenance waves)
#: filter on these attributes.
DC_ATTR_PLAN: Dict[str, Tuple[str, str, str]] = {
    "DC1": ("west", "tier4", "2N"),
    "DC2": ("west", "tier3", "N+1"),
    "DC3": ("west", "tier3", "N+1"),
    "DC4": ("central", "tier3", "N"),
    "DC5": ("central", "tier3", "N+1"),
    "DC6": ("east", "tier3", "N"),
    "DC7": ("east", "tier3", "N"),
    "DC8": ("east", "tier4", "2N"),
}

#: deep buffer on long-haul links (the paper provisions multi-GB buffers to
#: satisfy PFC headroom over 2000 km; we default to 512 MB which is deep
#: enough that the fluid model never tail-drops in the evaluated regimes)
INTER_DC_BUFFER_BYTES = 512 * 1024 * 1024


def build_testbed8(
    hosts_per_dc: int = 16,
    nic_bps: float = 100 * GBPS,
    expand_pods: bool = False,
    inter_dc_buffer_bytes: int = INTER_DC_BUFFER_BYTES,
    capacity_scale: float = 1.0,
) -> Topology:
    """Build the 8-DC testbed topology.

    Args:
        hosts_per_dc: servers attached to each datacenter (16 in the paper).
        nic_bps: host NIC rate (100 Gbps in the paper).
        expand_pods: when True also create the explicit leaf/spine fabric
            inside each DC (used by structural tests; the flow-level
            experiments use the condensed host-group form).
        inter_dc_buffer_bytes: egress buffer on inter-DC links.
        capacity_scale: multiply every capacity and buffer by this factor.
            The experiment harness runs the fluid model in a time-scaled
            regime (e.g. 1/50 of the provisioned rates) so that a few
            thousand Python-simulated flows sustain the paper's 30/50/80 %
            load levels over several seconds of simulated time; relative
            capacities, delays and utilisations are unchanged (see
            DESIGN.md, "Simulator design notes").

    Returns:
        A validated :class:`~repro.topology.graph.Topology`.
    """
    if capacity_scale <= 0:
        raise ValueError("capacity_scale must be positive")
    topo = Topology("testbed-8dc")
    for i in range(1, 9):
        name = f"DC{i}"
        region, tier, redundancy = DC_ATTR_PLAN[name]
        topo.add_dc(name, region=region, tier=tier, power_redundancy=redundancy)

    buffer_bytes = max(1, int(inter_dc_buffer_bytes * capacity_scale))
    for relay, (cap_bps, delay_s) in RELAY_PLAN.items():
        topo.add_inter_dc_link(
            "DC1", relay, cap_bps=cap_bps * capacity_scale, delay_s=delay_s,
            buffer_bytes=buffer_bytes,
        )
        topo.add_inter_dc_link(
            relay, "DC8", cap_bps=cap_bps * capacity_scale, delay_s=delay_s,
            buffer_bytes=buffer_bytes,
        )

    for dc in topo.dcs:
        topo.add_hosts(dc, count=hosts_per_dc, nic_bps=nic_bps * capacity_scale)
        if expand_pods:
            build_pod(topo, dc)

    topo.validate()
    return topo


def testbed8_pathset(topology: Topology | None = None, lazy: bool = True) -> PathSet:
    """Candidate paths for the testbed with the paper's multipath structure.

    With a detour bound of one extra hop the enumeration yields exactly the
    structure the paper reports: 6 candidates between DC1 and DC8, 2
    candidates between any two relay DCs, and a single path between DC1/DC8
    and each relay (16 of 28 unordered pairs are multipath, i.e. 57.1 %).

    ``lazy=False`` enumerates every pair up front (identical candidates
    and ids; kept for the lazy/eager equivalence suite).
    """
    topo = topology or build_testbed8()
    return PathSet(topo, max_candidates=8, max_extra_hops=1, lazy=lazy)
