"""Integer-indexed view of the inter-DC graph.

Everything downstream of the topology builder — candidate-path search,
reachability checks, runtime network wiring — wants the same three
things: a dense ``dc name <-> int id`` mapping, the inter-DC link
attributes as columns, and a CSR adjacency it can walk without hashing
strings.  :class:`TopologyIndex` builds them once per topology version;
:meth:`repro.topology.graph.Topology.inter_dc_index` caches the instance
and every consumer shares it.

The index is *static*: it snapshots the topology at construction time
and is invalidated (rebuilt) by the owning :class:`Topology` when the
graph mutates.  Runtime link state (capacity scaling, failures) lives in
the simulator layer and does not touch this view — candidate paths are
defined over provisioned capacities, matching the paper's control plane.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .graph import LinkSpec, Topology

__all__ = ["TopologyIndex"]

#: sentinel hop distance for unreachable nodes
UNREACHABLE = -1


class TopologyIndex:
    """CSR adjacency + link columns over the inter-DC graph.

    Attributes:
        dc_names: DC names in topology insertion order; position is the id.
        dc_ids: inverse mapping, name -> dense id.
        num_dcs: number of datacenters.
        link_specs: inter-DC :class:`LinkSpec` objects whose endpoints are
            both DCI nodes, in topology insertion order; position is the
            link row referenced by the CSR arrays.
        link_src / link_dst: per-link endpoint dc ids (``int32``).
        link_delay / link_cap: per-link propagation delay (s) and
            provisioned capacity (bps) columns (``float64``).
        adj_indptr / adj_dst / adj_link: CSR adjacency over dc ids;
            the neighbor slice of dc ``u`` is
            ``adj_dst[adj_indptr[u]:adj_indptr[u + 1]]`` with the matching
            link rows in ``adj_link``.  Neighbors are sorted by neighbor
            *name*, preserving the deterministic expansion order of the
            original DFS enumeration.
    """

    def __init__(self, topology: Topology) -> None:
        dcs = topology.dcs
        self.dc_names: Tuple[str, ...] = tuple(dcs)
        self.dc_ids: Dict[str, int] = {name: i for i, name in enumerate(dcs)}
        self.num_dcs = len(dcs)

        specs: List[LinkSpec] = []
        src_ids: List[int] = []
        dst_ids: List[int] = []
        for spec in topology.inter_dc_links():
            su = self.dc_ids.get(spec.src)
            sv = self.dc_ids.get(spec.dst)
            if su is None or sv is None:
                continue
            specs.append(spec)
            src_ids.append(su)
            dst_ids.append(sv)
        self.link_specs: Tuple[LinkSpec, ...] = tuple(specs)
        self.num_links = len(specs)
        self.link_src = np.asarray(src_ids, dtype=np.int32)
        self.link_dst = np.asarray(dst_ids, dtype=np.int32)
        self.link_delay = np.array([s.delay_s for s in specs], dtype=np.float64)
        self.link_cap = np.array([s.cap_bps for s in specs], dtype=np.float64)

        # CSR forward adjacency, neighbors sorted by name per source
        out: List[List[Tuple[str, int, int]]] = [[] for _ in range(self.num_dcs)]
        rev: List[List[int]] = [[] for _ in range(self.num_dcs)]
        for row in range(self.num_links):
            u = src_ids[row]
            v = dst_ids[row]
            out[u].append((self.dc_names[v], v, row))
            rev[v].append(u)
        indptr = np.zeros(self.num_dcs + 1, dtype=np.int64)
        adj_dst: List[int] = []
        adj_link: List[int] = []
        for u in range(self.num_dcs):
            out[u].sort()
            for _, v, row in out[u]:
                adj_dst.append(v)
                adj_link.append(row)
            indptr[u + 1] = len(adj_dst)
        self.adj_indptr = indptr
        self.adj_dst = np.asarray(adj_dst, dtype=np.int32)
        self.adj_link = np.asarray(adj_link, dtype=np.int32)

        # plain-python mirror of the CSR slices for the best-first search
        # inner loop (tuple iteration beats ndarray scalar indexing there)
        self.adjacency: Tuple[Tuple[Tuple[int, int, float, float], ...], ...] = tuple(
            tuple(
                (v, row, specs[row].delay_s, specs[row].cap_bps)
                for _, v, row in out[u]
            )
            for u in range(self.num_dcs)
        )
        self._reverse: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(rev[v]) for v in range(self.num_dcs)
        )
        self._hops_from: Dict[int, np.ndarray] = {}
        self._hops_to: Dict[int, np.ndarray] = {}
        self._specs_by_src: Optional[Dict[str, Tuple[LinkSpec, ...]]] = None

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def dc_id(self, name: str) -> int:
        """Dense id of DC ``name`` (-1 when unknown)."""
        return self.dc_ids.get(name, -1)

    def link_spec(self, row: int) -> LinkSpec:
        """The :class:`LinkSpec` stored at link row ``row``."""
        return self.link_specs[row]

    def specs_from(self, name: str) -> Tuple[LinkSpec, ...]:
        """Outgoing inter-DC links of DC ``name`` in link *insertion* order.

        Insertion order (not the name-sorted CSR order) is what the
        delay-Dijkstra relaxes links in; preserving it keeps its
        equal-delay tie-breaks — and therefore the ideal-FCT reference
        path — bit-identical to the pre-index implementation.
        """
        if self._specs_by_src is None:
            by_src: Dict[str, List[LinkSpec]] = {}
            for spec in self.link_specs:
                by_src.setdefault(spec.src, []).append(spec)
            self._specs_by_src = {k: tuple(v) for k, v in by_src.items()}
        return self._specs_by_src.get(name, ())

    # ------------------------------------------------------------------ #
    # hop distances (BFS, cached per endpoint)
    # ------------------------------------------------------------------ #
    def min_hops_from(self, src_id: int) -> np.ndarray:
        """Minimum hop count from ``src_id`` to every DC (-1 unreachable)."""
        cached = self._hops_from.get(src_id)
        if cached is None:
            cached = self._bfs(src_id, forward=True)
            self._hops_from[src_id] = cached
        return cached

    def min_hops_to(self, dst_id: int) -> np.ndarray:
        """Minimum hop count from every DC to ``dst_id`` (-1 unreachable).

        This is the admissible remaining-hops heuristic of the bounded
        best-first candidate search.
        """
        cached = self._hops_to.get(dst_id)
        if cached is None:
            cached = self._bfs(dst_id, forward=False)
            self._hops_to[dst_id] = cached
        return cached

    def reachable(self, src_id: int, dst_id: int) -> bool:
        """True when ``dst_id`` is reachable from ``src_id``."""
        return int(self.min_hops_from(src_id)[dst_id]) != UNREACHABLE

    def _bfs(self, start: int, forward: bool) -> np.ndarray:
        hops = np.full(self.num_dcs, UNREACHABLE, dtype=np.int32)
        if not (0 <= start < self.num_dcs):
            return hops
        hops[start] = 0
        frontier = [start]
        depth = 0
        if forward:
            neighbor_ids = [
                [v for v, _, _, _ in self.adjacency[u]] for u in range(self.num_dcs)
            ]
        else:
            neighbor_ids = [list(t) for t in self._reverse]
        while frontier:
            depth += 1
            nxt: List[int] = []
            for node in frontier:
                for v in neighbor_ids[node]:
                    if hops[v] == UNREACHABLE:
                        hops[v] = depth
                        nxt.append(v)
            frontier = nxt
        return hops

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def bytes_estimate(self) -> int:
        """Approximate resident size of the index's array payloads."""
        arrays = (
            self.link_src,
            self.link_dst,
            self.link_delay,
            self.link_cap,
            self.adj_indptr,
            self.adj_dst,
            self.adj_link,
        )
        total = sum(a.nbytes for a in arrays)
        total += sum(a.nbytes for a in self._hops_from.values())
        total += sum(a.nbytes for a in self._hops_to.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TopologyIndex(dcs={self.num_dcs}, links={self.num_links})"


def min_hops_between(
    index: TopologyIndex, src: str, dst: str
) -> Optional[int]:
    """Minimum inter-DC hop count between two named DCs (None unreachable)."""
    su = index.dc_id(src)
    sv = index.dc_id(dst)
    if su < 0 or sv < 0:
        return None
    hops = int(index.min_hops_from(su)[sv])
    return None if hops == UNREACHABLE else hops
