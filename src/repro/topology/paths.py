"""Candidate-path enumeration over inter-DC topologies.

LCMP (and every baseline router in this repository) chooses among a set of
*candidate* inter-DC routes for each (source DC, destination DC) pair.  The
paper's evaluation topologies expose between one and six candidates per pair.
This module enumerates loop-free candidate paths, ranks them, and exposes the
static attributes the LCMP control plane needs: end-to-end propagation delay
and bottleneck capacity.

Candidates are computed over the *inter-DC* graph only (DCI switches and the
links between them); intra-DC hops are accounted for separately by the
simulator's access-delay model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import LinkSpec, Topology, TopologyError

__all__ = ["CandidatePath", "PathSet", "enumerate_paths", "shortest_delay_path"]


@dataclass(frozen=True)
class CandidatePath:
    """A loop-free inter-DC route between two datacenters.

    Attributes:
        dcs: ordered DC names from source to destination (inclusive).
        links: the directed inter-DC links along the route.
        delay_s: total one-way propagation delay along ``links``.
        bottleneck_bps: minimum link capacity along ``links``.
        hop_count: number of inter-DC links.
    """

    dcs: Tuple[str, ...]
    links: Tuple[LinkSpec, ...]
    delay_s: float
    bottleneck_bps: float

    @property
    def src(self) -> str:
        """Source datacenter."""
        return self.dcs[0]

    @property
    def dst(self) -> str:
        """Destination datacenter."""
        return self.dcs[-1]

    @property
    def hop_count(self) -> int:
        """Number of inter-DC links traversed."""
        return len(self.links)

    @property
    def first_hop(self) -> str:
        """The next DC after the source — the egress decision LCMP makes."""
        return self.dcs[1]

    @property
    def first_link(self) -> LinkSpec:
        """The first inter-DC link (the egress port at the source DCI)."""
        return self.links[0]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        route = "->".join(self.dcs)
        return f"{route} ({self.delay_s * 1e3:.1f} ms, {self.bottleneck_bps / 1e9:g} Gbps)"


class PathSet:
    """Precomputed candidate paths for every ordered DC pair of a topology.

    The path set is the control-plane view of the network: the LCMP control
    plane walks it to install per-path quality scores, and routers query it at
    flow-arrival time for the candidate list of a destination.
    """

    def __init__(
        self,
        topology: Topology,
        max_candidates: int = 8,
        max_extra_hops: int = 2,
    ) -> None:
        """Enumerate candidates for all DC pairs.

        Args:
            topology: the inter-DC topology.
            max_candidates: keep at most this many candidates per pair.
            max_extra_hops: keep only paths whose hop count is within this
                many hops of the minimum hop count for the pair (prevents
                absurdly long detours on dense graphs).
        """
        self.topology = topology
        self.max_candidates = max_candidates
        self.max_extra_hops = max_extra_hops
        self._paths: Dict[Tuple[str, str], List[CandidatePath]] = {}
        for src, dst in topology.dc_pairs(ordered=True):
            cands = enumerate_paths(
                topology,
                src,
                dst,
                max_candidates=max_candidates,
                max_extra_hops=max_extra_hops,
            )
            self._paths[(src, dst)] = cands

        # precomputed integer path index: every candidate of every ordered
        # pair gets a stable global id, so batched routing, columnar
        # decision logs and FlowTable columns can refer to a path by one
        # integer instead of hashing DC tuples on the hot path
        self._path_list: List[CandidatePath] = []
        self._path_ids: Dict[Tuple[str, ...], int] = {}
        self._pair_ids: Dict[Tuple[str, str], Tuple[int, ...]] = {}
        for pair, cands in self._paths.items():
            ids = []
            for cand in cands:
                pid = self._path_ids.get(cand.dcs)
                if pid is None:
                    pid = len(self._path_list)
                    self._path_ids[cand.dcs] = pid
                    self._path_list.append(cand)
                ids.append(pid)
            self._pair_ids[pair] = tuple(ids)

    def candidates(self, src: str, dst: str) -> List[CandidatePath]:
        """Candidate paths from ``src`` to ``dst`` (may be empty)."""
        return list(self._paths.get((src, dst), []))

    # ------------------------------------------------------------------ #
    # integer path index
    # ------------------------------------------------------------------ #
    @property
    def num_paths(self) -> int:
        """Number of distinct candidate paths across all ordered pairs."""
        return len(self._path_list)

    def path_id(self, candidate: CandidatePath) -> int:
        """Stable integer id of a candidate (-1 for paths outside the set)."""
        return self._path_ids.get(candidate.dcs, -1)

    def path_by_id(self, path_id: int) -> CandidatePath:
        """The candidate path registered under ``path_id``."""
        return self._path_list[path_id]

    def candidate_ids(self, src: str, dst: str) -> Tuple[int, ...]:
        """Global path ids of the pair's candidates, aligned with
        :meth:`candidates` order (empty tuple for unknown pairs)."""
        return self._pair_ids.get((src, dst), ())

    def pairs_with_multipath(self) -> List[Tuple[str, str]]:
        """Ordered DC pairs that have two or more candidate paths."""
        return [pair for pair, cands in self._paths.items() if len(cands) >= 2]

    def multipath_fraction(self) -> float:
        """Fraction of ordered DC pairs with at least two candidates.

        The paper reports 57.1 % for the 8-DC testbed and 25.6 % for the
        13-DC BSONetwork topology (counting unordered pairs); this helper is
        used by the topology tests to check we are in the same regime.
        """
        total = len(self._paths)
        if total == 0:
            return 0.0
        multi = len(self.pairs_with_multipath())
        return multi / total

    def ideal_delay(self, src: str, dst: str) -> float:
        """Minimum propagation delay among candidates for the pair."""
        cands = self.candidates(src, dst)
        if not cands:
            raise TopologyError(f"no path from {src!r} to {dst!r}")
        return min(c.delay_s for c in cands)

    def best_bottleneck(self, src: str, dst: str) -> float:
        """Maximum bottleneck capacity among candidates for the pair."""
        cands = self.candidates(src, dst)
        if not cands:
            raise TopologyError(f"no path from {src!r} to {dst!r}")
        return max(c.bottleneck_bps for c in cands)

    def all_pairs(self) -> List[Tuple[str, str]]:
        """All ordered DC pairs covered by this path set."""
        return list(self._paths.keys())

    def __len__(self) -> int:
        return len(self._paths)


def _build_path(topology: Topology, dcs: Sequence[str]) -> CandidatePath:
    links = []
    delay = 0.0
    bottleneck = float("inf")
    for a, b in zip(dcs[:-1], dcs[1:]):
        spec = topology.link(a, b)
        links.append(spec)
        delay += spec.delay_s
        bottleneck = min(bottleneck, spec.cap_bps)
    return CandidatePath(
        dcs=tuple(dcs),
        links=tuple(links),
        delay_s=delay,
        bottleneck_bps=bottleneck,
    )


def enumerate_paths(
    topology: Topology,
    src: str,
    dst: str,
    max_candidates: int = 8,
    max_extra_hops: int = 2,
) -> List[CandidatePath]:
    """Enumerate loop-free candidate paths between two datacenters.

    The search is a bounded depth-first enumeration over the inter-DC graph.
    Results are ranked by (hop count, propagation delay) and truncated to
    ``max_candidates``; paths longer than ``min_hops + max_extra_hops`` are
    discarded.

    Args:
        topology: the inter-DC topology.
        src: source DC name.
        dst: destination DC name.
        max_candidates: cap on the number of returned candidates.
        max_extra_hops: detour bound relative to the hop-minimal path.

    Returns:
        A list of :class:`CandidatePath`, possibly empty when ``dst`` is
        unreachable from ``src``.
    """
    if src == dst:
        raise TopologyError("source and destination DC must differ")
    dci_neighbors: Dict[str, List[str]] = {}
    dcs = set(topology.dcs)
    for spec in topology.inter_dc_links():
        if spec.src in dcs and spec.dst in dcs:
            dci_neighbors.setdefault(spec.src, []).append(spec.dst)

    min_hops = _min_hops(dci_neighbors, src, dst)
    if min_hops is None:
        return []
    hop_limit = min_hops + max_extra_hops

    found: List[Tuple[str, ...]] = []
    stack: List[Tuple[str, Tuple[str, ...]]] = [(src, (src,))]
    while stack:
        node, route = stack.pop()
        if len(route) - 1 > hop_limit:
            continue
        for nxt in sorted(dci_neighbors.get(node, [])):
            if nxt in route:
                continue
            new_route = route + (nxt,)
            if nxt == dst:
                found.append(new_route)
            elif len(new_route) - 1 < hop_limit:
                stack.append((nxt, new_route))

    paths = [_build_path(topology, route) for route in found]
    paths.sort(key=lambda p: (p.hop_count, p.delay_s, -p.bottleneck_bps, p.dcs))
    return paths[:max_candidates]


def shortest_delay_path(
    topology: Topology, src: str, dst: str
) -> Optional[CandidatePath]:
    """Dijkstra over propagation delay on the inter-DC graph.

    Returns ``None`` when ``dst`` is unreachable.  Used to compute the ideal
    FCT reference (the paper normalises FCT by the flow's completion time on
    the shortest-propagation-delay path with no competing traffic).
    """
    dcs = set(topology.dcs)
    adj: Dict[str, List[LinkSpec]] = {}
    for spec in topology.inter_dc_links():
        if spec.src in dcs and spec.dst in dcs:
            adj.setdefault(spec.src, []).append(spec)

    best: Dict[str, float] = {src: 0.0}
    prev: Dict[str, str] = {}
    heap: List[Tuple[float, str]] = [(0.0, src)]
    visited = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == dst:
            break
        for spec in adj.get(node, []):
            cand = dist + spec.delay_s
            if cand < best.get(spec.dst, float("inf")):
                best[spec.dst] = cand
                prev[spec.dst] = node
                heapq.heappush(heap, (cand, spec.dst))
    if dst not in best:
        return None
    route = [dst]
    while route[-1] != src:
        route.append(prev[route[-1]])
    route.reverse()
    return _build_path(topology, route)


def _min_hops(adj: Dict[str, List[str]], src: str, dst: str) -> Optional[int]:
    """Breadth-first minimum hop count from ``src`` to ``dst``."""
    frontier = [src]
    seen = {src}
    hops = 0
    while frontier:
        nxt_frontier = []
        for node in frontier:
            if node == dst:
                return hops
            for nxt in adj.get(node, []):
                if nxt not in seen:
                    seen.add(nxt)
                    nxt_frontier.append(nxt)
        frontier = nxt_frontier
        hops += 1
    return None
