"""Candidate-path enumeration over inter-DC topologies.

LCMP (and every baseline router in this repository) chooses among a set of
*candidate* inter-DC routes for each (source DC, destination DC) pair.  The
paper's evaluation topologies expose between one and six candidates per pair.
This module enumerates loop-free candidate paths, ranks them, and exposes the
static attributes the LCMP control plane needs: end-to-end propagation delay
and bottleneck capacity.

Candidates are computed over the *inter-DC* graph only (DCI switches and the
links between them); intra-DC hops are accounted for separately by the
simulator's access-delay model.

Scale design (ROADMAP item 2, "continent-scale topologies"):

* Enumeration runs as a **bounded best-first search** over the shared
  integer-indexed adjacency (:class:`repro.topology.index.TopologyIndex`)
  with an admissible remaining-hops heuristic, so it stops as soon as the
  top ``max_candidates`` routes are provably final instead of exhausting
  every simple path and truncating.  The output is *identical* to the
  historical exhaustive-DFS-then-sort enumeration (same set, same order,
  bit-identical delays) — a property the lazy/eager parity suite pins.
* :class:`PathSet` is **lazy by default**: a pair's candidates are
  materialized on first request, cached in an LRU keyed by the pair (cap
  configurable for huge fabrics), and stored **columnar** — a CSR
  path→link-row array plus delay/bottleneck/hop columns — with
  :class:`PathView` as a lazily built per-path view (the FlowRecord
  pattern).  Global integer path ids are deterministic functions of
  ``(src, dst, rank)``, so lazy and eager construction, and any
  materialization order, assign identical ids.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .graph import LinkSpec, Topology, TopologyError
from .index import TopologyIndex

__all__ = [
    "CandidatePath",
    "PathSet",
    "PathView",
    "enumerate_paths",
    "shortest_delay_path",
]


@dataclass(frozen=True)
class CandidatePath:
    """A loop-free inter-DC route between two datacenters.

    Attributes:
        dcs: ordered DC names from source to destination (inclusive).
        links: the directed inter-DC links along the route.
        delay_s: total one-way propagation delay along ``links``.
        bottleneck_bps: minimum link capacity along ``links``.
        hop_count: number of inter-DC links.
    """

    dcs: Tuple[str, ...]
    links: Tuple[LinkSpec, ...]
    delay_s: float
    bottleneck_bps: float

    @property
    def src(self) -> str:
        """Source datacenter."""
        return self.dcs[0]

    @property
    def dst(self) -> str:
        """Destination datacenter."""
        return self.dcs[-1]

    @property
    def hop_count(self) -> int:
        """Number of inter-DC links traversed."""
        return len(self.links)

    @property
    def first_hop(self) -> str:
        """The next DC after the source — the egress decision LCMP makes."""
        return self.dcs[1]

    @property
    def first_link(self) -> LinkSpec:
        """The first inter-DC link (the egress port at the source DCI)."""
        return self.links[0]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        route = "->".join(self.dcs)
        return f"{route} ({self.delay_s * 1e3:.1f} ms, {self.bottleneck_bps / 1e9:g} Gbps)"


class PathView:
    """Candidate-path view over a :class:`PathSet`'s columnar geometry.

    Exposes the :class:`CandidatePath` interface (``dcs``, ``links``,
    ``delay_s``, ``bottleneck_bps``, ``hop_count``, ``src`` …) while the
    underlying storage stays columnar: scalar attributes are reads of the
    delay/bottleneck/hop columns, and the ``dcs``/``links`` tuples are
    reconstructed from the CSR link rows on first access and cached on
    the view (mirroring the FlowRecord-over-MetricsStore pattern).
    """

    __slots__ = ("_ps", "_row", "path_id", "_dcs", "_links")

    def __init__(self, pathset: "PathSet", row: int, path_id: int) -> None:
        self._ps = pathset
        self._row = row
        #: deterministic global id of this path within the owning PathSet
        self.path_id = path_id
        self._dcs: Optional[Tuple[str, ...]] = None
        self._links: Optional[Tuple[LinkSpec, ...]] = None

    @property
    def links(self) -> Tuple[LinkSpec, ...]:
        """The directed inter-DC links along the route."""
        if self._links is None:
            ps = self._ps
            start = ps._geom_indptr[self._row]
            end = ps._geom_indptr[self._row + 1]
            specs = ps._index.link_specs
            self._links = tuple(
                specs[r] for r in ps._geom_links[start:end].tolist()
            )
        return self._links

    @property
    def dcs(self) -> Tuple[str, ...]:
        """Ordered DC names from source to destination (inclusive)."""
        if self._dcs is None:
            links = self.links
            self._dcs = (links[0].src,) + tuple(spec.dst for spec in links)
        return self._dcs

    @property
    def delay_s(self) -> float:
        """Total one-way propagation delay along the route."""
        return float(self._ps._geom_delay[self._row])

    @property
    def bottleneck_bps(self) -> float:
        """Minimum link capacity along the route."""
        return float(self._ps._geom_bneck[self._row])

    @property
    def hop_count(self) -> int:
        """Number of inter-DC links traversed."""
        return int(self._ps._geom_hops[self._row])

    @property
    def src(self) -> str:
        """Source datacenter."""
        return self.links[0].src

    @property
    def dst(self) -> str:
        """Destination datacenter."""
        return self.links[-1].dst

    @property
    def first_hop(self) -> str:
        """The next DC after the source — the egress decision LCMP makes."""
        return self.links[0].dst

    @property
    def first_link(self) -> LinkSpec:
        """The first inter-DC link (the egress port at the source DCI)."""
        return self.links[0]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        route = "->".join(self.dcs)
        return f"{route} ({self.delay_s * 1e3:.1f} ms, {self.bottleneck_bps / 1e9:g} Gbps)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PathView(id={self.path_id}, {'->'.join(self.dcs)})"


class _GrowColumn:
    """Minimal growable 1-D array column (amortised-doubling appends)."""

    __slots__ = ("_arr", "_n")

    def __init__(self, dtype, capacity: int = 64) -> None:
        self._arr = np.empty(capacity, dtype=dtype)
        self._n = 0

    def append(self, value) -> None:
        if self._n == len(self._arr):
            self._arr = np.resize(self._arr, max(64, 2 * len(self._arr)))
        self._arr[self._n] = value
        self._n += 1

    def extend(self, values: Sequence) -> None:
        need = self._n + len(values)
        if need > len(self._arr):
            cap = max(64, len(self._arr))
            while cap < need:
                cap *= 2
            self._arr = np.resize(self._arr, cap)
        self._arr[self._n : need] = values
        self._n = need

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, item):
        return self._arr[:self._n][item]

    @property
    def nbytes(self) -> int:
        return self._arr.nbytes


class PathSet:
    """Candidate paths for every ordered DC pair of a topology.

    The path set is the control-plane view of the network: the LCMP control
    plane derives per-path quality scores from it, and routers query it at
    flow-arrival time for the candidate list of a destination.

    By default candidates are **lazy**: a pair is enumerated the first time
    it is queried and cached (LRU, ``cache_pairs`` cap; ``None`` =
    unbounded).  ``lazy=False`` enumerates everything up front — identical
    candidates and ids, kept reachable for the equivalence suite.  Path
    geometry is stored columnar; :meth:`candidates` returns
    :class:`PathView` objects built over the columns.

    Global path ids are deterministic:
    ``((src_id * num_dcs) + dst_id) * max_candidates + rank`` — sparse but
    stable across lazy/eager construction and materialization order, so
    columnar decision logs and batched routing can key on them safely.
    """

    def __init__(
        self,
        topology: Topology,
        max_candidates: int = 8,
        max_extra_hops: int = 2,
        lazy: bool = True,
        cache_pairs: Optional[int] = None,
    ) -> None:
        """Prepare (and for ``lazy=False`` fully enumerate) the path set.

        Args:
            topology: the inter-DC topology.
            max_candidates: keep at most this many candidates per pair.
            max_extra_hops: keep only paths whose hop count is within this
                many hops of the minimum hop count for the pair (prevents
                absurdly long detours on dense graphs).
            lazy: materialize per-pair candidates on first request instead
                of enumerating every ordered pair up front.
            cache_pairs: LRU cap on cached materialized pairs (``None`` =
                unbounded).  Evicted pairs re-enumerate on next access;
                ids and geometry stay stable.
        """
        if max_candidates <= 0:
            raise TopologyError("max_candidates must be positive")
        self.topology = topology
        self.max_candidates = max_candidates
        self.max_extra_hops = max_extra_hops
        self.lazy = lazy
        self.cache_pairs = cache_pairs
        self._index: TopologyIndex = topology.inter_dc_index()
        n = self._index.num_dcs
        self._num_pairs = n * (n - 1)

        # columnar path geometry: CSR path-row -> link rows, plus scalar
        # delay / bottleneck / hop columns.  Rows are append-only and
        # survive LRU eviction of the per-pair view cache.
        self._geom_indptr = _GrowColumn(np.int64)
        self._geom_indptr.append(0)
        self._geom_links = _GrowColumn(np.int32)
        self._geom_delay = _GrowColumn(np.float64)
        self._geom_bneck = _GrowColumn(np.float64)
        self._geom_hops = _GrowColumn(np.int32)
        self._pid_row: Dict[int, int] = {}

        # LRU over materialized pairs: (src_id, dst_id) -> (views, ids)
        self._pair_cache: "OrderedDict[Tuple[int, int], Tuple[Tuple[PathView, ...], Tuple[int, ...]]]" = (
            OrderedDict()
        )
        #: number of pair enumerations actually run (re-runs after
        #: eviction count again; benchmark/test observability)
        self.searches_run = 0
        #: number of LRU evictions (benchmark/test observability)
        self.cache_evictions = 0

        if not lazy:
            self.prewarm()

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    def _pair_entry(
        self, src_id: int, dst_id: int
    ) -> Tuple[Tuple[PathView, ...], Tuple[int, ...]]:
        """The (views, ids) entry for a pair, materializing if needed."""
        n = self._index.num_dcs
        if src_id < 0 or dst_id < 0 or src_id == dst_id:
            return (), ()
        key = (src_id, dst_id)
        cache = self._pair_cache
        entry = cache.get(key)
        if entry is not None:
            cache.move_to_end(key)
            return entry

        routes = _bounded_search(
            self._index, src_id, dst_id, self.max_candidates, self.max_extra_hops
        )
        self.searches_run += 1
        base = (src_id * n + dst_id) * self.max_candidates
        views = []
        ids = []
        for rank, (hops, delay, neg_bneck, link_rows) in enumerate(routes):
            pid = base + rank
            row = self._pid_row.get(pid)
            if row is None:
                row = len(self._geom_hops)
                self._geom_links.extend(link_rows)
                self._geom_indptr.append(len(self._geom_links))
                self._geom_delay.append(delay)
                self._geom_bneck.append(-neg_bneck)
                self._geom_hops.append(hops)
                self._pid_row[pid] = row
            views.append(PathView(self, row, pid))
            ids.append(pid)
        entry = (tuple(views), tuple(ids))
        cache[key] = entry
        if self.cache_pairs is not None and len(cache) > self.cache_pairs:
            cache.popitem(last=False)
            self.cache_evictions += 1
        return entry

    def prewarm(self, pairs: Optional[Iterable[Tuple[str, str]]] = None) -> int:
        """Materialize candidates for ``pairs`` (default: every ordered pair).

        Keeps the integer-index contract warm for batched consumers that
        want predictable first-query latency.  Returns the number of pairs
        visited.
        """
        if pairs is None:
            pairs = self.all_pairs()
        count = 0
        dc_id = self._index.dc_id
        for src, dst in pairs:
            self._pair_entry(dc_id(src), dc_id(dst))
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def candidates(self, src: str, dst: str) -> List[PathView]:
        """Candidate paths from ``src`` to ``dst`` (may be empty)."""
        dc_id = self._index.dc_id
        return list(self._pair_entry(dc_id(src), dc_id(dst))[0])

    def candidate_ids(self, src: str, dst: str) -> Tuple[int, ...]:
        """Global path ids of the pair's candidates, aligned with
        :meth:`candidates` order (empty tuple for unknown pairs)."""
        dc_id = self._index.dc_id
        return self._pair_entry(dc_id(src), dc_id(dst))[1]

    def has_path(self, src: str, dst: str) -> bool:
        """True when at least one candidate exists for the ordered pair.

        A pure reachability check over the shared index — it never
        materializes the pair (the hop-minimal route always satisfies the
        detour bound, so reachability and non-empty candidates coincide).
        """
        su = self._index.dc_id(src)
        sv = self._index.dc_id(dst)
        if su < 0 or sv < 0 or su == sv:
            return False
        return self._index.reachable(su, sv)

    def pair_metrics(self, src: str, dst: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-candidate ``(delays_s, bottlenecks_bps)`` columns for a pair.

        Aligned with :meth:`candidates` order; empty arrays for unknown or
        unreachable pairs.  Lets consumers (e.g. the ideal-FCT model) read
        path attributes without building per-path views.
        """
        dc_id = self._index.dc_id
        views, ids = self._pair_entry(dc_id(src), dc_id(dst))
        if not ids:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
        rows = [self._pid_row[pid] for pid in ids]
        return self._geom_delay[rows], self._geom_bneck[rows]

    # ------------------------------------------------------------------ #
    # integer path index
    # ------------------------------------------------------------------ #
    @property
    def num_paths(self) -> int:
        """Number of distinct candidate paths materialized so far.

        Eager path sets (``lazy=False``) have everything materialized at
        construction, matching the historical meaning.
        """
        return len(self._pid_row)

    def path_id(self, candidate) -> int:
        """Stable integer id of a candidate (-1 for paths outside the set)."""
        if isinstance(candidate, PathView) and candidate._ps is self:
            return candidate.path_id
        dcs = candidate.dcs
        dc_id = self._index.dc_id
        views, ids = self._pair_entry(dc_id(dcs[0]), dc_id(dcs[-1]))
        for view, vid in zip(views, ids):
            if view.dcs == dcs:
                return vid
        return -1

    def path_by_id(self, path_id: int):
        """The candidate path registered under ``path_id``.

        Raises:
            IndexError: for ids outside the deterministic id space or
                ranks beyond the pair's candidate count.
        """
        n = self._index.num_dcs
        if path_id < 0:
            raise IndexError(f"path id {path_id} out of range")
        pair_code, rank = divmod(path_id, self.max_candidates)
        src_id, dst_id = divmod(pair_code, n)
        if src_id >= n or src_id == dst_id:
            raise IndexError(f"path id {path_id} out of range")
        views, _ = self._pair_entry(src_id, dst_id)
        if rank >= len(views):
            raise IndexError(f"path id {path_id} has no materialized path")
        return views[rank]

    # ------------------------------------------------------------------ #
    # aggregate views (materialize every pair on demand)
    # ------------------------------------------------------------------ #
    def pairs_with_multipath(self) -> List[Tuple[str, str]]:
        """Ordered DC pairs that have two or more candidate paths.

        Materializes every ordered pair (an aggregate statistic cannot be
        answered lazily); intended for topology-sized analysis, not the
        per-flow hot path.
        """
        dc_id = self._index.dc_id
        return [
            (src, dst)
            for src, dst in self.all_pairs()
            if len(self._pair_entry(dc_id(src), dc_id(dst))[1]) >= 2
        ]

    def multipath_fraction(self) -> float:
        """Fraction of ordered DC pairs with at least two candidates.

        The paper reports 57.1 % for the 8-DC testbed and 25.6 % for the
        13-DC BSONetwork topology (counting unordered pairs); this helper is
        used by the topology tests to check we are in the same regime.
        """
        if self._num_pairs == 0:
            return 0.0
        return len(self.pairs_with_multipath()) / self._num_pairs

    def ideal_delay(self, src: str, dst: str) -> float:
        """Minimum propagation delay among candidates for the pair."""
        delays, _ = self.pair_metrics(src, dst)
        if delays.size == 0:
            raise TopologyError(f"no path from {src!r} to {dst!r}")
        return float(delays.min())

    def best_bottleneck(self, src: str, dst: str) -> float:
        """Maximum bottleneck capacity among candidates for the pair."""
        _, bnecks = self.pair_metrics(src, dst)
        if bnecks.size == 0:
            raise TopologyError(f"no path from {src!r} to {dst!r}")
        return float(bnecks.max())

    def all_pairs(self) -> List[Tuple[str, str]]:
        """All ordered DC pairs covered by this path set."""
        names = self._index.dc_names
        return [(a, b) for a in names for b in names if a != b]

    def __len__(self) -> int:
        return self._num_pairs

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def memory_bytes(self) -> int:
        """Structure-size estimate of the path set's resident payloads.

        Counts the columnar geometry arrays, the shared topology index's
        array payloads, and a per-entry estimate for the id→row map and
        the pair cache.  Feeds the ``topology.pathset_bytes`` gauge of the
        memory benchmark lane.
        """
        geom = (
            self._geom_indptr.nbytes
            + self._geom_links.nbytes
            + self._geom_delay.nbytes
            + self._geom_bneck.nbytes
            + self._geom_hops.nbytes
        )
        # dict-entry overhead estimates (key + value + hash slot)
        maps = 64 * len(self._pid_row) + 96 * len(self._pair_cache)
        return geom + maps + self._index.bytes_estimate()


def _bounded_search(
    index: TopologyIndex,
    src_id: int,
    dst_id: int,
    max_candidates: int,
    max_extra_hops: int,
) -> List[Tuple[int, float, float, Tuple[int, ...]]]:
    """Bounded best-first enumeration of loop-free routes between dc ids.

    Expands partial routes in order of ``(hops_so_far + min_remaining_hops,
    delay_so_far)`` — an admissible priority, so completed routes pop in
    nondecreasing ``(hop_count, delay)`` order.  The search stops once
    ``max_candidates`` routes are collected **and** the heap minimum is
    strictly worse in ``(hops, delay)`` than the current k-th route (ties
    must keep running: an equal-(hops, delay) route can still win on the
    bottleneck/name tie-break of the full ranking key).  The final sort by
    ``(hops, delay, -bottleneck, route)`` therefore returns exactly what
    the exhaustive enumeration would.

    Returns:
        Up to ``max_candidates`` tuples ``(hop_count, delay_s,
        -bottleneck_bps, link_rows)`` in ranking order.
    """
    dist_to = index.min_hops_to(dst_id)
    min_hops = int(dist_to[src_id])
    if min_hops < 0:
        return []
    hop_limit = min_hops + max_extra_hops
    remaining = dist_to.tolist()
    names = index.dc_names
    adjacency = index.adjacency
    k = max_candidates

    # (hops, delay, -bneck, name-route, link rows); name-route is the
    # ranking tie-break (identical to the old ``p.dcs`` sort component)
    completed: List[Tuple[int, float, float, Tuple[str, ...], Tuple[int, ...]]] = []
    heap = [
        (min_hops, 0.0, (names[src_id],), src_id, (src_id,), float("inf"), ())
    ]
    while heap:
        f, delay, route_names, node, route, bneck, link_rows = heapq.heappop(heap)
        if len(completed) >= k:
            kth = completed[k - 1]
            if (f, delay) > (kth[0], kth[1]):
                break
        if node == dst_id:
            completed.append((len(route) - 1, delay, -bneck, route_names, link_rows))
            continue
        next_hops = len(route)
        for v, row, d, cap in adjacency[node]:
            if v in route:
                continue
            rem = remaining[v]
            if rem < 0 or next_hops + rem > hop_limit:
                continue
            heapq.heappush(
                heap,
                (
                    next_hops + rem,
                    delay + d,
                    route_names + (names[v],),
                    v,
                    route + (v,),
                    bneck if bneck < cap else cap,
                    link_rows + (row,),
                ),
            )
    completed.sort()
    return [
        (hops, delay, neg_bneck, link_rows)
        for hops, delay, neg_bneck, _, link_rows in completed[:k]
    ]


def _build_path(topology: Topology, dcs: Sequence[str]) -> CandidatePath:
    links = []
    delay = 0.0
    bottleneck = float("inf")
    for a, b in zip(dcs[:-1], dcs[1:]):
        spec = topology.link(a, b)
        links.append(spec)
        delay += spec.delay_s
        bottleneck = min(bottleneck, spec.cap_bps)
    return CandidatePath(
        dcs=tuple(dcs),
        links=tuple(links),
        delay_s=delay,
        bottleneck_bps=bottleneck,
    )


def enumerate_paths(
    topology: Topology,
    src: str,
    dst: str,
    max_candidates: int = 8,
    max_extra_hops: int = 2,
) -> List[CandidatePath]:
    """Enumerate loop-free candidate paths between two datacenters.

    A bounded best-first search over the topology's shared integer index
    (see :func:`_bounded_search`); results are ranked by (hop count,
    propagation delay, -bottleneck, route) and truncated to
    ``max_candidates``; paths longer than ``min_hops + max_extra_hops``
    are discarded.  Output is identical to the historical exhaustive DFS
    enumeration.

    Args:
        topology: the inter-DC topology.
        src: source DC name.
        dst: destination DC name.
        max_candidates: cap on the number of returned candidates.
        max_extra_hops: detour bound relative to the hop-minimal path.

    Returns:
        A list of :class:`CandidatePath`, possibly empty when ``dst`` is
        unreachable from ``src``.
    """
    if src == dst:
        raise TopologyError("source and destination DC must differ")
    index = topology.inter_dc_index()
    src_id = index.dc_id(src)
    dst_id = index.dc_id(dst)
    if src_id < 0 or dst_id < 0:
        return []
    routes = _bounded_search(index, src_id, dst_id, max_candidates, max_extra_hops)
    specs = index.link_specs
    out = []
    for hops, delay, neg_bneck, link_rows in routes:
        links = tuple(specs[r] for r in link_rows)
        out.append(
            CandidatePath(
                dcs=(links[0].src,) + tuple(spec.dst for spec in links),
                links=links,
                delay_s=delay,
                bottleneck_bps=-neg_bneck,
            )
        )
    return out


def shortest_delay_path(
    topology: Topology, src: str, dst: str
) -> Optional[CandidatePath]:
    """Dijkstra over propagation delay on the inter-DC graph.

    Returns ``None`` when ``dst`` is unreachable.  Used to compute the ideal
    FCT reference (the paper normalises FCT by the flow's completion time on
    the shortest-propagation-delay path with no competing traffic).  Links
    are relaxed in insertion order (via :meth:`TopologyIndex.specs_from`),
    preserving the historical equal-delay tie-breaks bit for bit.
    """
    index = topology.inter_dc_index()

    best: Dict[str, float] = {src: 0.0}
    prev: Dict[str, str] = {}
    heap: List[Tuple[float, str]] = [(0.0, src)]
    visited = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == dst:
            break
        for spec in index.specs_from(node):
            cand = dist + spec.delay_s
            if cand < best.get(spec.dst, float("inf")):
                best[spec.dst] = cand
                prev[spec.dst] = node
                heapq.heappush(heap, (cand, spec.dst))
    if dst not in best:
        return None
    route = [dst]
    while route[-1] != src:
        route.append(prev[route[-1]])
    route.reverse()
    return _build_path(topology, route)
