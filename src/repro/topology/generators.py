"""Seeded parametric generators for continent-scale WAN fabrics.

The paper's evaluation topologies stop at 13 DCs; ROADMAP item 2 calls
for *hundreds* of DCs and thousands of links so the scaling work (lazy
path sets, int-indexed adjacency, memory lanes) has something real to
chew on.  :class:`FabricSpec` describes a multi-tier fabric —
``regions`` metro regions, each a core/agg/edge fan-out tree with
per-tier capacities — stitched into a WAN backbone (a core-level ring
across regions plus seeded chord links).  :func:`build_fabric` turns a
spec into a validated :class:`~repro.topology.graph.Topology` with
region/tier/power :class:`~repro.topology.graph.DCAttrs` on every DC,
and :func:`fabric_pathset` wraps it in a (lazy by default)
:class:`~repro.topology.paths.PathSet`.

Generation is fully deterministic for a given spec: every random draw
comes from one ``numpy`` generator seeded with ``spec.seed``, in a fixed
order.  The spec is a frozen dataclass of primitives, so it is hashable
(the experiment runner's topology cache keys on it) and picklable
(parallel sweeps ship specs, not topologies).

Example::

    spec = FabricSpec(regions=4, edges_per_agg=5)
    topo = build_fabric(spec)
    paths = fabric_pathset(topo)

``CONTINENT_400`` is the canned ~400-DC spec the memory benchmark lane
and the scale tests use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .graph import GBPS, MS, Topology
from .paths import PathSet

__all__ = ["FabricSpec", "CONTINENT_400", "build_fabric", "fabric_pathset"]


@dataclass(frozen=True)
class FabricSpec:
    """Parameters of a generated multi-tier WAN fabric.

    Attributes:
        name: topology name prefix.
        seed: seed for every random draw (delays, dual-homing, chords).
        regions: number of metro regions.
        cores_per_region: core DCs per region (the WAN-facing tier).
        aggs_per_core: aggregation DCs hanging off each core.
        edges_per_agg: edge DCs hanging off each aggregation DC.
        core_cap_gbps / agg_cap_gbps / edge_cap_gbps: provisioned
            capacity of backbone, core→agg and agg→edge links.
        dual_home_fraction: fraction of agg and edge DCs that get a
            second uplink (to the next core / next agg), creating the
            multipath structure the routers exercise.
        backbone_chords: extra seeded core-to-core chord links added on
            top of the inter-region ring (per region).
        metro_delay_ms: (lo, hi) uniform range for intra-region delays.
        backbone_delay_ms: (lo, hi) uniform range for backbone delays.
        hosts_per_dc: hosts attached to every DC.
        nic_gbps: host NIC rate.
    """

    name: str = "fabric"
    seed: int = 0
    regions: int = 8
    cores_per_region: int = 2
    aggs_per_core: int = 3
    edges_per_agg: int = 7
    core_cap_gbps: float = 400.0
    agg_cap_gbps: float = 100.0
    edge_cap_gbps: float = 25.0
    dual_home_fraction: float = 0.5
    backbone_chords: int = 2
    metro_delay_ms: Tuple[float, float] = (0.5, 2.0)
    backbone_delay_ms: Tuple[float, float] = (10.0, 40.0)
    hosts_per_dc: int = 2
    nic_gbps: float = 10.0

    @property
    def dcs_per_region(self) -> int:
        """DC count of one region's core/agg/edge tree."""
        cores = self.cores_per_region
        aggs = cores * self.aggs_per_core
        return cores + aggs + aggs * self.edges_per_agg

    @property
    def num_dcs(self) -> int:
        """Total DC count of the generated fabric."""
        return self.regions * self.dcs_per_region

    def validate(self) -> None:
        """Sanity-check the spec before generation."""
        if self.regions < 1 or self.cores_per_region < 1:
            raise ValueError("need at least one region with one core DC")
        if self.aggs_per_core < 0 or self.edges_per_agg < 0:
            raise ValueError("tier fan-outs must be non-negative")
        if not (0.0 <= self.dual_home_fraction <= 1.0):
            raise ValueError("dual_home_fraction must be within [0, 1]")
        if min(self.core_cap_gbps, self.agg_cap_gbps, self.edge_cap_gbps) <= 0:
            raise ValueError("tier capacities must be positive")
        for lo, hi in (self.metro_delay_ms, self.backbone_delay_ms):
            if lo <= 0 or hi < lo:
                raise ValueError("delay ranges must be positive and ordered")


#: the canned ~400-DC continental fabric used by the memory benchmark
#: lane and the scale tests: 8 regions x (2 core + 6 agg + 42 edge)
CONTINENT_400 = FabricSpec(name="continent400")


def _uniform_ms(rng: np.random.Generator, bounds: Tuple[float, float]) -> float:
    lo, hi = bounds
    return float(rng.uniform(lo, hi)) * MS


def build_fabric(spec: FabricSpec, capacity_scale: float = 1.0) -> Topology:
    """Generate the multi-tier WAN fabric described by ``spec``.

    Args:
        spec: fabric parameters (seeded; same spec => same topology).
        capacity_scale: multiplier on every link capacity and NIC rate
            (the experiment runner's congestion knob).

    Returns:
        A validated :class:`~repro.topology.graph.Topology` whose DCs
        carry region/tier/power attributes.
    """
    spec.validate()
    if capacity_scale <= 0:
        raise ValueError("capacity_scale must be positive")
    rng = np.random.default_rng(spec.seed)
    topo = Topology(f"{spec.name}-{spec.num_dcs}dc")

    core_cap = spec.core_cap_gbps * GBPS * capacity_scale
    agg_cap = spec.agg_cap_gbps * GBPS * capacity_scale
    edge_cap = spec.edge_cap_gbps * GBPS * capacity_scale

    cores: list[list[str]] = []
    for r in range(spec.regions):
        region = f"region{r}"
        region_cores = []
        for c in range(spec.cores_per_region):
            name = f"R{r}C{c}"
            topo.add_dc(name, region=region, tier="core", power_redundancy="2N")
            region_cores.append(name)
        cores.append(region_cores)

        # intra-region core mesh (full mesh is tiny: cores_per_region^2)
        for i, a in enumerate(region_cores):
            for b in region_cores[i + 1 :]:
                topo.add_inter_dc_link(
                    a, b, cap_bps=core_cap, delay_s=_uniform_ms(rng, spec.metro_delay_ms)
                )

        for c, core in enumerate(region_cores):
            # all aggs of a core exist before any edge dual-homes to a
            # sibling agg
            for a in range(spec.aggs_per_core):
                agg = f"R{r}A{c}x{a}"
                topo.add_dc(agg, region=region, tier="agg", power_redundancy="N+1")
                topo.add_inter_dc_link(
                    core, agg, cap_bps=agg_cap,
                    delay_s=_uniform_ms(rng, spec.metro_delay_ms),
                )
                # dual-home a seeded fraction of aggs to the next core
                if (
                    spec.cores_per_region > 1
                    and rng.random() < spec.dual_home_fraction
                ):
                    other = region_cores[(c + 1) % spec.cores_per_region]
                    topo.add_inter_dc_link(
                        other, agg, cap_bps=agg_cap,
                        delay_s=_uniform_ms(rng, spec.metro_delay_ms),
                    )
            for a in range(spec.aggs_per_core):
                agg = f"R{r}A{c}x{a}"
                for e in range(spec.edges_per_agg):
                    edge = f"R{r}E{c}x{a}x{e}"
                    power = "N+1" if rng.random() < 0.3 else "N"
                    topo.add_dc(
                        edge, region=region, tier="edge", power_redundancy=power
                    )
                    topo.add_inter_dc_link(
                        agg, edge, cap_bps=edge_cap,
                        delay_s=_uniform_ms(rng, spec.metro_delay_ms),
                    )
                    # dual-home a seeded fraction of edges to a sibling agg
                    if (
                        spec.aggs_per_core > 1
                        and rng.random() < spec.dual_home_fraction
                    ):
                        sibling = f"R{r}A{c}x{(a + 1) % spec.aggs_per_core}"
                        topo.add_inter_dc_link(
                            sibling, edge, cap_bps=edge_cap,
                            delay_s=_uniform_ms(rng, spec.metro_delay_ms),
                        )

    # WAN backbone: ring over regions (core i of region r to core i of the
    # next region), then seeded long-haul chords for path diversity
    if spec.regions > 1:
        for r in range(spec.regions):
            nxt = (r + 1) % spec.regions
            for c in range(spec.cores_per_region):
                # two regions close the ring after one hop: skip the
                # would-be duplicate reverse link
                if topo.has_link(cores[r][c], cores[nxt][c]):
                    continue
                topo.add_inter_dc_link(
                    cores[r][c], cores[nxt][c], cap_bps=core_cap,
                    delay_s=_uniform_ms(rng, spec.backbone_delay_ms),
                )
        if spec.regions > 2:
            for r in range(spec.regions):
                for _ in range(spec.backbone_chords):
                    other = int(rng.integers(0, spec.regions))
                    if other in (r, (r + 1) % spec.regions, (r - 1) % spec.regions):
                        continue
                    a = cores[r][int(rng.integers(0, spec.cores_per_region))]
                    b = cores[other][int(rng.integers(0, spec.cores_per_region))]
                    if topo.has_link(a, b):
                        continue
                    topo.add_inter_dc_link(
                        a, b, cap_bps=core_cap,
                        delay_s=_uniform_ms(rng, spec.backbone_delay_ms),
                    )

    nic = spec.nic_gbps * GBPS * capacity_scale
    for dc in topo.dcs:
        topo.add_hosts(dc, count=spec.hosts_per_dc, nic_bps=nic)

    topo.validate()
    return topo


def fabric_pathset(
    topology: Topology,
    lazy: bool = True,
    max_candidates: int = 4,
    max_extra_hops: int = 1,
    cache_pairs: Optional[int] = None,
) -> PathSet:
    """Candidate paths for a generated fabric.

    Defaults are scale-lean: at most four candidates per pair within one
    extra hop of the minimum keeps the per-pair search bounded on graphs
    with thousands of links; ``cache_pairs`` bounds the resident
    materialized-pair cache on huge fabrics.
    """
    return PathSet(
        topology,
        max_candidates=max_candidates,
        max_extra_hops=max_extra_hops,
        lazy=lazy,
        cache_pairs=cache_pairs,
    )
