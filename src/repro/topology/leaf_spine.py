"""Intra-DC leaf-spine pod builder.

The paper's testbed attaches a small leaf-spine fabric to each DCI switch:
1 DCI switch, 2 spine switches, 4 leaf switches and 16 servers (4 per leaf).
Intra-DC links run at 100 Gbps with 1 us propagation delay and the
DCI-to-spine links at 400 Gbps so the intra-DC fabric is never an artificial
bottleneck.

The flow-level experiments condense the pod into a host group (NIC rate +
access delay) because the fabric is non-blocking by construction; this module
exists so the topology layer can also express the full structure, which the
structural tests exercise and which downstream users can extend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .graph import GBPS, US, NodeKind, Topology

__all__ = ["PodSpec", "build_pod"]


@dataclass(frozen=True)
class PodSpec:
    """Dimensions of an intra-DC leaf-spine pod."""

    spines: int = 2
    leaves: int = 4
    hosts_per_leaf: int = 4
    host_link_bps: float = 100 * GBPS
    leaf_spine_bps: float = 100 * GBPS
    spine_dci_bps: float = 400 * GBPS
    link_delay_s: float = 1 * US


def build_pod(topology: Topology, dc: str, spec: PodSpec | None = None) -> List[str]:
    """Expand the full leaf-spine pod under datacenter ``dc``.

    Creates spine, leaf and host nodes named ``"{dc}/spine{i}"``,
    ``"{dc}/leaf{i}"`` and ``"{dc}/host{i}"`` and wires them with
    bidirectional links: host-leaf, leaf-spine (full bipartite) and
    spine-DCI.

    Args:
        topology: topology to extend; must already contain DC ``dc``.
        dc: the datacenter (DCI switch node) name.
        spec: pod dimensions; defaults to the paper's 2x4x16 pod.

    Returns:
        The names of the created host nodes.
    """
    spec = spec or PodSpec()
    spine_names = []
    for i in range(spec.spines):
        name = f"{dc}/spine{i}"
        topology.add_node(name, NodeKind.SPINE, dc=dc)
        spine_names.append(name)
        topology.add_link(dc, name, spec.spine_dci_bps, spec.link_delay_s, inter_dc=False)
        topology.add_link(name, dc, spec.spine_dci_bps, spec.link_delay_s, inter_dc=False)

    leaf_names = []
    for i in range(spec.leaves):
        name = f"{dc}/leaf{i}"
        topology.add_node(name, NodeKind.LEAF, dc=dc)
        leaf_names.append(name)
        for spine in spine_names:
            topology.add_link(spine, name, spec.leaf_spine_bps, spec.link_delay_s, inter_dc=False)
            topology.add_link(name, spine, spec.leaf_spine_bps, spec.link_delay_s, inter_dc=False)

    host_names = []
    host_idx = 0
    for leaf in leaf_names:
        for _ in range(spec.hosts_per_leaf):
            name = f"{dc}/host{host_idx}"
            host_idx += 1
            topology.add_node(name, NodeKind.HOST, dc=dc)
            host_names.append(name)
            topology.add_link(leaf, name, spec.host_link_bps, spec.link_delay_s, inter_dc=False)
            topology.add_link(name, leaf, spec.host_link_bps, spec.link_delay_s, inter_dc=False)

    return host_names
