"""Topology data model for inter-datacenter networks.

The topology layer describes the *static* properties of the network: which
datacenters exist, how they are interconnected (directed inter-DC links with
provisioned capacity and one-way propagation delay), and how hosts inside a
datacenter reach the DCI (datacenter-interconnect) switch.

The simulator (:mod:`repro.simulator`) instantiates runtime state (queues,
flows, monitors) from a :class:`Topology`; the LCMP control plane
(:mod:`repro.core.control_plane`) reads the same object to precompute
path-quality scores.

Units used throughout the project:

* capacity — bits per second (``cap_bps``)
* propagation delay — seconds (``delay_s``)
* buffer size — bytes
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from types import MappingProxyType as _MappingProxyType
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "GBPS",
    "MBPS",
    "MS",
    "US",
    "NodeKind",
    "Node",
    "LinkSpec",
    "HostGroup",
    "DCAttrs",
    "POWER_REDUNDANCY_LEVELS",
    "power_redundancy_rank",
    "Topology",
    "TopologyError",
]

#: one gigabit per second, in bits per second
GBPS = 1_000_000_000
#: one megabit per second, in bits per second
MBPS = 1_000_000
#: one millisecond, in seconds
MS = 1e-3
#: one microsecond, in seconds
US = 1e-6


class TopologyError(ValueError):
    """Raised when a topology is malformed (unknown node, duplicate link...)."""


#: datacenter power-redundancy levels, weakest first: ``"N"`` (no spare
#: feed), ``"N+1"`` (one spare), ``"2N"`` (fully duplicated plant)
POWER_REDUNDANCY_LEVELS: Tuple[str, ...] = ("N", "N+1", "2N")


def power_redundancy_rank(level: str) -> int:
    """Ordinal of a power-redundancy level (higher survives more).

    Raises:
        TopologyError: for a level outside :data:`POWER_REDUNDANCY_LEVELS`.
    """
    try:
        return POWER_REDUNDANCY_LEVELS.index(level)
    except ValueError:
        raise TopologyError(
            f"unknown power redundancy {level!r}; known: {POWER_REDUNDANCY_LEVELS}"
        ) from None


@dataclass(frozen=True)
class DCAttrs:
    """Operational attributes of one datacenter.

    These model the ontology real outage events correlate on: a regional
    power event hits every DC in a ``region``, a tier-scoped maintenance
    wave targets a ``tier``, and ``power_redundancy`` decides whether a
    power event blacks the DC out or merely degrades it (a 2N facility
    rides through on its duplicated feed).

    Attributes:
        region: geographic region label (``None`` when unassigned).
        tier: facility tier label, e.g. ``"tier3"`` (``None`` when
            unassigned).
        power_redundancy: one of :data:`POWER_REDUNDANCY_LEVELS`.
    """

    region: Optional[str] = None
    tier: Optional[str] = None
    power_redundancy: str = "N"

    def __post_init__(self) -> None:
        power_redundancy_rank(self.power_redundancy)


class NodeKind:
    """Enumeration of node roles used by the topology layer."""

    DCI = "dci"
    SPINE = "spine"
    LEAF = "leaf"
    HOST = "host"

    ALL = (DCI, SPINE, LEAF, HOST)


@dataclass(frozen=True)
class Node:
    """A node in the topology.

    Attributes:
        name: globally unique node name, e.g. ``"DC3"`` or ``"DC3/leaf0"``.
        kind: one of :class:`NodeKind`.
        dc: name of the datacenter this node belongs to (for DCI switches this
            equals ``name``).
    """

    name: str
    kind: str
    dc: str

    def __post_init__(self) -> None:
        if self.kind not in NodeKind.ALL:
            raise TopologyError(f"unknown node kind {self.kind!r}")


@dataclass(frozen=True)
class LinkSpec:
    """A directed link between two nodes.

    Attributes:
        src: name of the transmitting node (owns the egress queue).
        dst: name of the receiving node.
        cap_bps: provisioned capacity in bits per second.
        delay_s: one-way propagation delay in seconds.
        buffer_bytes: egress buffer size in bytes; ``None`` means the builder
            default (see :meth:`Topology.add_link`).
        inter_dc: True when the link crosses a datacenter boundary.
    """

    src: str
    dst: str
    cap_bps: float
    delay_s: float
    buffer_bytes: int
    inter_dc: bool

    @property
    def key(self) -> Tuple[str, str]:
        """(src, dst) pair identifying this directed link."""
        return (self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        flavour = "inter" if self.inter_dc else "intra"
        return (
            f"{self.src}->{self.dst} ({self.cap_bps / GBPS:g} Gbps, "
            f"{self.delay_s * 1e3:g} ms, {flavour}-DC)"
        )


@dataclass
class HostGroup:
    """A group of identical hosts attached to one datacenter.

    The evaluation topologies attach 16 servers per DC behind a leaf/spine
    fabric.  For flow-level simulation the hosts matter only as traffic
    sources/sinks with a NIC rate limit, so a group records the count, NIC
    rate and the access delay from host to the DCI switch.
    """

    dc: str
    count: int
    nic_bps: float
    access_delay_s: float


class Topology:
    """A mutable builder + immutable-ish view of an inter-DC network.

    A topology contains datacenters (each represented by a DCI switch node),
    optional intra-DC fabric nodes, directed links, and per-DC host groups.

    Example:
        >>> topo = Topology("demo")
        >>> topo.add_dc("DC1"); topo.add_dc("DC2")
        >>> topo.add_inter_dc_link("DC1", "DC2", cap_bps=100 * GBPS, delay_s=5 * MS)
        >>> topo.add_hosts("DC1", count=4, nic_bps=100 * GBPS)
        >>> topo.add_hosts("DC2", count=4, nic_bps=100 * GBPS)
        >>> sorted(topo.dcs)
        ['DC1', 'DC2']
    """

    #: default egress buffer for intra-DC links (shallow, commodity switch)
    DEFAULT_INTRA_BUFFER = 16 * 1024 * 1024
    #: default egress buffer for inter-DC links (deep, long-haul provisioning)
    DEFAULT_INTER_BUFFER = 512 * 1024 * 1024

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._host_groups: Dict[str, HostGroup] = {}
        self._dc_attrs: Dict[str, DCAttrs] = {}
        # adjacency index maintained incrementally by add_link so
        # neighbors() never has to scan the full link table
        self._adjacency: Dict[str, List[str]] = {}
        # mutation counter: bumped on every add_*; version-tagged caches
        # (cached property tuples, the inter-DC integer index) compare
        # against it instead of being invalidated one by one
        self._version = 0
        self._cache_version = -1
        self._dcs_cache: Tuple[str, ...] = ()
        self._links_cache: Tuple[LinkSpec, ...] = ()
        self._inter_dc_cache: Tuple[LinkSpec, ...] = ()
        self._neighbors_cache: Dict[str, Tuple[str, ...]] = {}
        self._index_cache = None  # (version, TopologyIndex)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str, kind: str, dc: Optional[str] = None) -> Node:
        """Add a node; returns the created :class:`Node`.

        Raises:
            TopologyError: if a node with the same name already exists.
        """
        if name in self._nodes:
            raise TopologyError(f"duplicate node {name!r}")
        node = Node(name=name, kind=kind, dc=dc or name)
        self._nodes[name] = node
        self._version += 1
        return node

    def add_dc(
        self,
        name: str,
        region: Optional[str] = None,
        tier: Optional[str] = None,
        power_redundancy: str = "N",
    ) -> Node:
        """Add a datacenter, represented by its DCI switch node.

        Args:
            name: datacenter name, e.g. ``"DC3"``.
            region: optional geographic region label (correlated power
                events match on it).
            tier: optional facility tier label.
            power_redundancy: one of :data:`POWER_REDUNDANCY_LEVELS`;
                defaults to ``"N"`` (no spare feed).
        """
        node = self.add_node(name, NodeKind.DCI, dc=name)
        self._dc_attrs[name] = DCAttrs(
            region=region, tier=tier, power_redundancy=power_redundancy
        )
        return node

    def dc_attrs(self, name: str) -> DCAttrs:
        """Operational attributes of datacenter ``name``.

        Raises:
            TopologyError: when ``name`` is not a known datacenter.
        """
        try:
            return self._dc_attrs[name]
        except KeyError:
            raise TopologyError(f"unknown datacenter {name!r}") from None

    def dcs_matching(
        self, region: Optional[str] = None, tier: Optional[str] = None
    ) -> List[str]:
        """Datacenters matching a region/tier filter, in insertion order.

        ``None`` matches any value for that field; with both ``None`` every
        datacenter matches (the filterless regional event is a full-fleet
        power event).
        """
        selected = []
        for dc in self.dcs:
            attrs = self._dc_attrs.get(dc, DCAttrs())
            if region is not None and attrs.region != region:
                continue
            if tier is not None and attrs.tier != tier:
                continue
            selected.append(dc)
        return selected

    def add_hosts(
        self,
        dc: str,
        count: int,
        nic_bps: float,
        access_delay_s: float = 2 * US,
    ) -> HostGroup:
        """Attach ``count`` hosts with ``nic_bps`` NICs to datacenter ``dc``.

        The access delay models the (few microsecond) path through the
        intra-DC leaf/spine fabric up to the DCI switch.
        """
        self._require_node(dc)
        if count <= 0:
            raise TopologyError("host count must be positive")
        if nic_bps <= 0:
            raise TopologyError("NIC rate must be positive")
        group = HostGroup(dc=dc, count=count, nic_bps=nic_bps, access_delay_s=access_delay_s)
        self._host_groups[dc] = group
        return group

    def add_link(
        self,
        src: str,
        dst: str,
        cap_bps: float,
        delay_s: float,
        buffer_bytes: Optional[int] = None,
        inter_dc: Optional[bool] = None,
    ) -> LinkSpec:
        """Add a single directed link from ``src`` to ``dst``."""
        self._require_node(src)
        self._require_node(dst)
        if cap_bps <= 0:
            raise TopologyError("link capacity must be positive")
        if delay_s < 0:
            raise TopologyError("link delay must be non-negative")
        if (src, dst) in self._links:
            raise TopologyError(f"duplicate link {src!r}->{dst!r}")
        if inter_dc is None:
            inter_dc = self._nodes[src].dc != self._nodes[dst].dc
        if buffer_bytes is None:
            buffer_bytes = (
                self.DEFAULT_INTER_BUFFER if inter_dc else self.DEFAULT_INTRA_BUFFER
            )
        spec = LinkSpec(
            src=src,
            dst=dst,
            cap_bps=float(cap_bps),
            delay_s=float(delay_s),
            buffer_bytes=int(buffer_bytes),
            inter_dc=bool(inter_dc),
        )
        self._links[(src, dst)] = spec
        self._adjacency.setdefault(src, []).append(dst)
        self._version += 1
        return spec

    def add_inter_dc_link(
        self,
        dc_a: str,
        dc_b: str,
        cap_bps: float,
        delay_s: float,
        buffer_bytes: Optional[int] = None,
    ) -> Tuple[LinkSpec, LinkSpec]:
        """Add a bidirectional inter-DC link (two directed links)."""
        fwd = self.add_link(dc_a, dc_b, cap_bps, delay_s, buffer_bytes, inter_dc=True)
        rev = self.add_link(dc_b, dc_a, cap_bps, delay_s, buffer_bytes, inter_dc=True)
        return fwd, rev

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _refresh_caches(self) -> None:
        """Rebuild the cached query tuples after a mutation.

        The cached tuples (``dcs``, ``links``, ``inter_dc_links`` and the
        per-node ``neighbors`` results) are version-tagged: any ``add_*``
        call bumps ``_version`` and the next query rebuilds them all at
        once.  Between mutations every query is a cached-tuple return —
        no per-access container copies (hot loops iterate ``dcs`` and
        ``neighbors`` per flow batch and per telemetry sweep).
        """
        if self._cache_version == self._version:
            return
        self._dcs_cache = tuple(
            n.name for n in self._nodes.values() if n.kind == NodeKind.DCI
        )
        self._links_cache = tuple(self._links.values())
        self._inter_dc_cache = tuple(l for l in self._links_cache if l.inter_dc)
        self._neighbors_cache = {
            src: tuple(dsts) for src, dsts in self._adjacency.items()
        }
        self._cache_version = self._version

    @property
    def nodes(self) -> Dict[str, Node]:
        """Read-only live view of node name to :class:`Node`."""
        return _MappingProxyType(self._nodes)

    @property
    def links(self) -> Tuple[LinkSpec, ...]:
        """All directed links, in insertion order (cached tuple)."""
        self._refresh_caches()
        return self._links_cache

    @property
    def dcs(self) -> Tuple[str, ...]:
        """Names of all datacenters (DCI switch nodes), in insertion order."""
        self._refresh_caches()
        return self._dcs_cache

    @property
    def host_groups(self) -> Dict[str, HostGroup]:
        """Read-only live view of per-DC host groups."""
        return _MappingProxyType(self._host_groups)

    def link(self, src: str, dst: str) -> LinkSpec:
        """Return the directed link from ``src`` to ``dst``.

        Raises:
            TopologyError: if no such link exists.
        """
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link {src!r}->{dst!r}") from None

    def has_link(self, src: str, dst: str) -> bool:
        """True when a directed link from ``src`` to ``dst`` exists."""
        return (src, dst) in self._links

    def neighbors(self, node: str) -> Tuple[str, ...]:
        """Names of nodes reachable over one directed link from ``node``.

        Served from the incrementally maintained adjacency index — no
        scan over the link table.
        """
        self._require_node(node)
        self._refresh_caches()
        return self._neighbors_cache.get(node, ())

    def inter_dc_links(self) -> Tuple[LinkSpec, ...]:
        """All directed inter-DC links (cached tuple)."""
        self._refresh_caches()
        return self._inter_dc_cache

    def inter_dc_index(self):
        """The integer-indexed view of the inter-DC graph.

        Built once per topology version and shared by every consumer
        (path enumeration, reachability checks, runtime wiring); any
        ``add_*`` mutation invalidates it.  Returns a
        :class:`repro.topology.index.TopologyIndex`.
        """
        cached = self._index_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from .index import TopologyIndex

        index = TopologyIndex(self)
        self._index_cache = (self._version, index)
        return index

    def dc_pairs(self, ordered: bool = True) -> Iterator[Tuple[str, str]]:
        """Iterate over distinct (src DC, dst DC) pairs.

        Args:
            ordered: when True yields both (a, b) and (b, a); otherwise only
                unordered pairs with ``a < b`` in insertion order.
        """
        dcs = self.dcs
        if ordered:
            for a, b in itertools.permutations(dcs, 2):
                yield a, b
        else:
            for a, b in itertools.combinations(dcs, 2):
                yield a, b

    def hosts_in(self, dc: str) -> int:
        """Number of hosts attached to ``dc`` (0 when no host group)."""
        group = self._host_groups.get(dc)
        return group.count if group else 0

    def validate(self) -> None:
        """Check structural invariants of the topology.

        Raises:
            TopologyError: when a DC is unreachable from another DC, a link
                references an unknown node, or no DCs are defined.
        """
        dcs = self.dcs
        if not dcs:
            raise TopologyError("topology has no datacenters")
        for spec in self._links.values():
            if spec.src not in self._nodes or spec.dst not in self._nodes:
                raise TopologyError(f"link {spec} references unknown node")
        # connectivity over inter-DC links (treat as undirected for the check)
        adjacency: Dict[str, set] = {dc: set() for dc in dcs}
        for spec in self.inter_dc_links():
            if spec.src in adjacency and spec.dst in adjacency:
                adjacency[spec.src].add(spec.dst)
        reached = {dcs[0]}
        frontier = [dcs[0]]
        while frontier:
            current = frontier.pop()
            for nxt in adjacency[current]:
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        missing = set(dcs) - reached
        if missing:
            raise TopologyError(f"datacenters unreachable from {dcs[0]}: {sorted(missing)}")

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, object]:
        """Drop derived caches when pickling (rebuilt lazily on use)."""
        state = self.__dict__.copy()
        state["_cache_version"] = -1
        state["_dcs_cache"] = ()
        state["_links_cache"] = ()
        state["_inter_dc_cache"] = ()
        state["_neighbors_cache"] = {}
        state["_index_cache"] = None
        return state

    def _require_node(self, name: str) -> None:
        if name not in self._nodes:
            raise TopologyError(f"unknown node {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, dcs={len(self.dcs)}, "
            f"links={len(self._links)}, hosts={sum(g.count for g in self._host_groups.values())})"
        )
